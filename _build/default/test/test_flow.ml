module Mcmf = Revmax_flow.Mcmf
module Max_dcs = Revmax_flow.Max_dcs
module Rng = Revmax_prelude.Rng

(* ----- Mcmf ----- *)

let test_mcmf_single_path () =
  let net = Mcmf.create 3 in
  let e1 = Mcmf.add_edge net ~src:0 ~dst:1 ~cap:4 ~cost:1.0 in
  let e2 = Mcmf.add_edge net ~src:1 ~dst:2 ~cap:3 ~cost:2.0 in
  let r = Mcmf.solve net ~source:0 ~sink:2 in
  Alcotest.(check int) "flow" 3 r.Mcmf.flow;
  Helpers.check_float "cost" 9.0 r.Mcmf.cost;
  Alcotest.(check int) "edge1 flow" 3 (Mcmf.flow_on net e1);
  Alcotest.(check int) "edge2 flow" 3 (Mcmf.flow_on net e2)

let test_mcmf_prefers_cheap_path () =
  (* two parallel 0→1 routes via intermediate nodes; cheap one saturates first *)
  let net = Mcmf.create 4 in
  let cheap = Mcmf.add_edge net ~src:0 ~dst:1 ~cap:1 ~cost:1.0 in
  let expensive = Mcmf.add_edge net ~src:0 ~dst:2 ~cap:1 ~cost:5.0 in
  let _ = Mcmf.add_edge net ~src:1 ~dst:3 ~cap:1 ~cost:0.0 in
  let _ = Mcmf.add_edge net ~src:2 ~dst:3 ~cap:1 ~cost:0.0 in
  let r = Mcmf.solve net ~source:0 ~sink:3 in
  Alcotest.(check int) "max flow" 2 r.Mcmf.flow;
  Helpers.check_float "total cost" 6.0 r.Mcmf.cost;
  Alcotest.(check int) "cheap used" 1 (Mcmf.flow_on net cheap);
  Alcotest.(check int) "expensive used" 1 (Mcmf.flow_on net expensive)

let test_mcmf_negative_costs () =
  (* a negative-cost arc requires the Bellman-Ford potential seeding *)
  let net = Mcmf.create 3 in
  let _ = Mcmf.add_edge net ~src:0 ~dst:1 ~cap:2 ~cost:(-3.0) in
  let _ = Mcmf.add_edge net ~src:1 ~dst:2 ~cap:2 ~cost:1.0 in
  let r = Mcmf.solve net ~source:0 ~sink:2 in
  Alcotest.(check int) "flow" 2 r.Mcmf.flow;
  Helpers.check_float "cost" (-4.0) r.Mcmf.cost

let test_mcmf_stop_when_unprofitable () =
  (* profitable unit (-2 + 1 = -1) then unprofitable unit (0 + 1 = +1):
     profit mode must ship exactly one unit *)
  let net = Mcmf.create 3 in
  let _ = Mcmf.add_edge net ~src:0 ~dst:1 ~cap:1 ~cost:(-2.0) in
  let _ = Mcmf.add_edge net ~src:0 ~dst:1 ~cap:1 ~cost:0.0 in
  let _ = Mcmf.add_edge net ~src:1 ~dst:2 ~cap:2 ~cost:1.0 in
  let r = Mcmf.solve ~stop_when_unprofitable:true net ~source:0 ~sink:2 in
  Alcotest.(check int) "flow" 1 r.Mcmf.flow;
  Helpers.check_float "cost" (-1.0) r.Mcmf.cost

let test_mcmf_disconnected () =
  let net = Mcmf.create 2 in
  let r = Mcmf.solve net ~source:0 ~sink:1 in
  Alcotest.(check int) "no flow" 0 r.Mcmf.flow;
  Helpers.check_float "no cost" 0.0 r.Mcmf.cost

(* ----- Max_dcs ----- *)

let solution_weight (sol : Max_dcs.solution) = sol.Max_dcs.weight

let test_dcs_simple_matching () =
  (* 2 users, 2 items, degree bounds 1: a classic assignment *)
  let inst =
    {
      Max_dcs.left = 2;
      right = 2;
      left_bound = [| 1; 1 |];
      right_bound = [| 1; 1 |];
      edges = [| (0, 0, 3.0); (0, 1, 5.0); (1, 0, 4.0); (1, 1, 1.0) |];
    }
  in
  let sol = Max_dcs.solve inst in
  (* best: (0,1)=5 + (1,0)=4 = 9; greedy would also find it here *)
  Helpers.check_float "optimal weight" 9.0 (solution_weight sol);
  Alcotest.(check int) "two edges" 2 (Array.length sol.Max_dcs.chosen)

let test_dcs_greedy_suboptimal () =
  (* instance where weight-greedy is strictly suboptimal:
     greedy takes (0,0)=10 then cannot take (1,0); ends with 10 + 0.
     optimum: (0,1)=9 + (1,0)=9 = 18. *)
  let inst =
    {
      Max_dcs.left = 2;
      right = 2;
      left_bound = [| 1; 1 |];
      right_bound = [| 1; 1 |];
      edges = [| (0, 0, 10.0); (0, 1, 9.0); (1, 0, 9.0) |];
    }
  in
  let greedy = Max_dcs.greedy_lower_bound inst in
  let exact = Max_dcs.solve inst in
  Helpers.check_float "greedy weight" 10.0 greedy.Max_dcs.weight;
  Helpers.check_float "exact weight" 18.0 exact.Max_dcs.weight

let test_dcs_degree_bounds_respected () =
  let inst =
    {
      Max_dcs.left = 1;
      right = 3;
      left_bound = [| 2 |];
      right_bound = [| 1; 1; 1 |];
      edges = [| (0, 0, 1.0); (0, 1, 2.0); (0, 2, 3.0) |];
    }
  in
  let sol = Max_dcs.solve inst in
  (* user degree bound 2: picks the two heaviest *)
  Helpers.check_float "weight" 5.0 sol.Max_dcs.weight;
  Alcotest.(check int) "edges" 2 (Array.length sol.Max_dcs.chosen)

let test_dcs_negative_weights_dropped () =
  let inst =
    {
      Max_dcs.left = 1;
      right = 2;
      left_bound = [| 2 |];
      right_bound = [| 1; 1 |];
      edges = [| (0, 0, -5.0); (0, 1, 2.0) |];
    }
  in
  let sol = Max_dcs.solve inst in
  Helpers.check_float "weight" 2.0 sol.Max_dcs.weight;
  Alcotest.(check int) "only positive edge" 1 (Array.length sol.Max_dcs.chosen)

let test_dcs_validation () =
  Alcotest.check_raises "bad endpoint" (Invalid_argument "Max_dcs: edge endpoint out of range")
    (fun () ->
      ignore
        (Max_dcs.solve
           {
             Max_dcs.left = 1;
             right = 1;
             left_bound = [| 1 |];
             right_bound = [| 1 |];
             edges = [| (0, 5, 1.0) |];
           }))

(* brute-force reference: enumerate all edge subsets on tiny instances *)
let brute_force_dcs (inst : Max_dcs.instance) =
  let n = Array.length inst.Max_dcs.edges in
  let best = ref 0.0 in
  for mask = 0 to (1 lsl n) - 1 do
    let ldeg = Array.make inst.Max_dcs.left 0 in
    let rdeg = Array.make inst.Max_dcs.right 0 in
    let w = ref 0.0 in
    let ok = ref true in
    for e = 0 to n - 1 do
      if mask land (1 lsl e) <> 0 then begin
        let u, v, we = inst.Max_dcs.edges.(e) in
        ldeg.(u) <- ldeg.(u) + 1;
        rdeg.(v) <- rdeg.(v) + 1;
        if ldeg.(u) > inst.Max_dcs.left_bound.(u) || rdeg.(v) > inst.Max_dcs.right_bound.(v) then
          ok := false;
        w := !w +. we
      end
    done;
    if !ok && !w > !best then best := !w
  done;
  !best

let prop_dcs_optimality =
  QCheck2.Test.make ~name:"Max-DCS matches brute force" ~count:100
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let left = 1 + Rng.int rng 3 and right = 1 + Rng.int rng 3 in
      let edges = ref [] in
      for u = 0 to left - 1 do
        for v = 0 to right - 1 do
          if Rng.bernoulli rng 0.7 then
            edges := (u, v, Rng.uniform_in rng (-2.0) 10.0) :: !edges
        done
      done;
      let inst =
        {
          Max_dcs.left;
          right;
          left_bound = Array.init left (fun _ -> 1 + Rng.int rng 2);
          right_bound = Array.init right (fun _ -> 1 + Rng.int rng 2);
          edges = Array.of_list !edges;
        }
      in
      let sol = Max_dcs.solve inst in
      let greedy = Max_dcs.greedy_lower_bound inst in
      let opt = brute_force_dcs inst in
      Helpers.float_eq ~eps:1e-6 opt sol.Max_dcs.weight
      && greedy.Max_dcs.weight <= sol.Max_dcs.weight +. 1e-9)

let () =
  Alcotest.run "flow"
    [
      ( "mcmf",
        [
          Alcotest.test_case "single path" `Quick test_mcmf_single_path;
          Alcotest.test_case "prefers cheap path" `Quick test_mcmf_prefers_cheap_path;
          Alcotest.test_case "negative costs" `Quick test_mcmf_negative_costs;
          Alcotest.test_case "stop when unprofitable" `Quick test_mcmf_stop_when_unprofitable;
          Alcotest.test_case "disconnected" `Quick test_mcmf_disconnected;
        ] );
      ( "max_dcs",
        [
          Alcotest.test_case "simple matching" `Quick test_dcs_simple_matching;
          Alcotest.test_case "greedy suboptimal" `Quick test_dcs_greedy_suboptimal;
          Alcotest.test_case "degree bounds" `Quick test_dcs_degree_bounds_respected;
          Alcotest.test_case "negative weights dropped" `Quick test_dcs_negative_weights_dropped;
          Alcotest.test_case "validation" `Quick test_dcs_validation;
          QCheck_alcotest.to_alcotest prop_dcs_optimality;
        ] );
    ]
