module Rng = Revmax_prelude.Rng
module Instance = Revmax.Instance
module Triple = Revmax.Triple
module Strategy = Revmax.Strategy
module Revenue = Revmax.Revenue
module Relaxed = Revmax.Relaxed
module Local_search = Revmax.Local_search
module Random_price = Revmax.Random_price
module Matroid = Revmax_matroid.Matroid
open Helpers

let seed_gen = QCheck2.Gen.int_range 0 1_000_000

(* ----- Relaxed objective (R-REVMAX) ----- *)

let prop_relaxed_equals_strict_when_within_capacity =
  QCheck2.Test.make ~name:"valid strategy ⇒ relaxed revenue = Rev" ~count:80 seed_gen
    (fun seed ->
      let rng = Rng.create seed in
      let inst = random_instance rng in
      let s = random_valid_strategy inst rng in
      (* under capacity every B_S = 1 whenever fewer than q_i users got i;
         validity guarantees exactly that, unless capacity is met exactly —
         then B < 1 is possible, so restrict to strictly-under strategies *)
      let strictly_under =
        List.for_all
          (fun (z : Triple.t) ->
            Strategy.item_user_count s z.i < Instance.capacity inst z.i)
          (Strategy.to_list s)
      in
      (not strictly_under)
      || Helpers.float_eq ~eps:1e-9 (Revenue.total s) (Relaxed.total s))

let test_effective_probability_over_capacity () =
  (* Example 3 flavour: capacity 1, users u and v both get the item at t=1;
     for v the factor is B = Pr[u does not adopt] = 1 − q(u) *)
  let inst =
    Instance.create ~num_users:2 ~num_items:1 ~horizon:1 ~display_limit:1 ~class_of:[| 0 |]
      ~capacity:[| 1 |] ~saturation:[| 1.0 |]
      ~price:[| [| 1.0 |] |]
      ~adoption:[ (0, 0, [| 0.6 |]); (1, 0, [| 0.5 |]) ]
      ()
  in
  let s = Strategy.of_list inst [ triple 0 0 1; triple 1 0 1 ] in
  check_float ~eps:1e-12 "E for user 1" (0.5 *. 0.4) (Relaxed.effective_probability s (triple 1 0 1));
  check_float ~eps:1e-12 "E for user 0" (0.6 *. 0.5) (Relaxed.effective_probability s (triple 0 0 1));
  check_float ~eps:1e-12 "relaxed total" ((0.5 *. 0.4) +. (0.6 *. 0.5)) (Relaxed.total s)

let prop_relaxed_le_unconstrained =
  QCheck2.Test.make ~name:"relaxed revenue <= saturation-competition revenue" ~count:60 seed_gen
    (fun seed ->
      let rng = Rng.create seed in
      let inst = random_instance rng in
      (* any strategy, valid or not: B factors only shrink probabilities *)
      let all = Array.of_list (candidate_triples inst) in
      Rng.shuffle rng all;
      let s = Strategy.create inst in
      Array.iteri (fun idx z -> if idx mod 2 = 0 then Strategy.add s z) all;
      Relaxed.total s <= Revenue.total s +. 1e-9)

(* ----- Local search for R-REVMAX ----- *)

(* brute force over display-valid subsets of the candidate ground set *)
let brute_force_relaxed inst =
  let ground = Array.of_list (candidate_triples inst) in
  let n = Array.length ground in
  let best = ref 0.0 in
  let k = Instance.display_limit inst in
  let rec go idx chosen =
    if idx = n then begin
      let s = Strategy.of_list inst chosen in
      if Strategy.is_valid_display_only s then begin
        let v = Relaxed.total s in
        if v > !best then best := v
      end
    end
    else begin
      go (idx + 1) chosen;
      let z = ground.(idx) in
      let display_ok =
        List.length
          (List.filter (fun (z' : Triple.t) -> z'.u = z.u && z'.t = z.t) chosen)
        < k
      in
      if display_ok then go (idx + 1) (z :: chosen)
    end
  in
  go 0 [];
  !best

(* fixed seeds: the 1/(4+ε) guarantee leans on submodularity, which has
   corner-case failures (DESIGN.md §5a), so this is an empirical bound
   checked over a deterministic instance bank rather than fresh randomness *)
let test_local_search_quality () =
  for seed = 0 to 19 do
    let rng = Rng.create seed in
    let inst = random_instance ~max_users:2 ~max_items:2 ~max_horizon:2 rng in
    if Instance.num_candidate_triples inst <= 7 then begin
      let r = Local_search.solve ~eps:0.2 inst in
      let opt = brute_force_relaxed inst in
      if not (Strategy.is_valid_display_only r.Local_search.strategy) then
        Alcotest.failf "seed %d: display-invalid output" seed;
      Helpers.check_float ~eps:1e-9 "value consistent" r.Local_search.value
        (Relaxed.total r.Local_search.strategy);
      if r.Local_search.value < (opt /. 5.0) -. 1e-9 then
        Alcotest.failf "seed %d: %.6f below a fifth of optimum %.6f" seed r.Local_search.value opt
    end
  done

let test_local_search_reports_oracle_calls () =
  let inst = example4_instance () in
  let r = Local_search.solve inst in
  Alcotest.(check bool) "oracle calls > 0" true (r.Local_search.oracle_calls > 0);
  (* on example 4 the relaxed optimum is also the singleton {(u,i,2)} *)
  check_float ~eps:1e-12 "value" 0.57 r.Local_search.value

(* the display matroid built by local search matches Lemma 2 semantics *)
let test_display_matroid_lemma2 () =
  let part_of = [| 0; 0; 1 |] in
  let m = Matroid.partition ~part_of ~bound:[| 1; 1 |] in
  Alcotest.(check bool) "same (u,t) conflict" false (Matroid.is_independent m [ 0; 1 ]);
  Alcotest.(check bool) "different (u,t) fine" true (Matroid.is_independent m [ 0; 2 ])

(* ----- Random prices (§7) ----- *)

(* a model with zero variance must reduce Taylor to the deterministic value *)
let deterministic_model inst =
  {
    Random_price.mean = (fun ~i ~time -> Instance.price inst ~i ~time);
    sigma = (fun ~i:_ ~time:_ -> 0.0);
    corr = 0.0;
    q_of_price =
      (fun ~u ~i ~price ->
        (* recover the instance's q at its own price; probe time steps for
           the matching price *)
        let horizon = Instance.horizon inst in
        let rec find t =
          if t > horizon then 0.0
          else if Helpers.float_eq ~eps:1e-9 (Instance.price inst ~i ~time:t) price then
            Instance.q inst ~u ~i ~time:t
          else find (t + 1)
        in
        find 1);
  }

let test_taylor_zero_variance_reduces_to_deterministic () =
  let inst = example4_instance () in
  let s = Strategy.of_list inst [ triple 0 0 1; triple 0 0 2 ] in
  let model = deterministic_model inst in
  check_float ~eps:1e-9 "order 1" 0.5285 (Random_price.taylor_revenue ~order:`One inst model s);
  check_float ~eps:1e-9 "order 2" 0.5285 (Random_price.taylor_revenue ~order:`Two inst model s)

(* a linear-in-price valuation link on a single triple: g(p) = p·q(p) is
   quadratic, so the order-2 Taylor value must equal the exact expectation *)
let test_taylor_exact_on_quadratic () =
  let inst =
    Instance.create ~num_users:1 ~num_items:1 ~horizon:1 ~display_limit:1 ~class_of:[| 0 |]
      ~capacity:[| 1 |] ~saturation:[| 1.0 |]
      ~price:[| [| 5.0 |] |]
      ~adoption:[ (0, 0, [| 0.5 |]) ]
      ()
  in
  let s = Strategy.of_list inst [ triple 0 0 1 ] in
  let sigma = 1.2 in
  let q_of_price ~u:_ ~i:_ ~price = Revmax_prelude.Util.clamp_prob (1.0 -. (price /. 10.0)) in
  let model =
    {
      Random_price.mean = (fun ~i:_ ~time:_ -> 5.0);
      sigma = (fun ~i:_ ~time:_ -> sigma);
      corr = 0.0;
      q_of_price;
    }
  in
  (* E[p(1 − p/10)] = μ − (μ² + σ²)/10 *)
  let exact = 5.0 -. ((25.0 +. (sigma *. sigma)) /. 10.0) in
  let t2 = Random_price.taylor_revenue ~order:`Two inst model s in
  check_float ~eps:1e-4 "order-2 exact on quadratic" exact t2;
  (* order 1 misses the variance term *)
  let t1 = Random_price.taylor_revenue ~order:`One inst model s in
  check_float ~eps:1e-9 "order-1 value" (5.0 -. 2.5) t1;
  (* Monte-Carlo agrees with the exact value *)
  let est = Random_price.mc_revenue inst model s ~samples:200_000 (Rng.create 3) in
  Alcotest.(check bool) "MC agrees" true (Revmax_stats.Mc.within_ci est exact)

let test_taylor_order2_beats_order1 () =
  (* multi-triple chain with price-sensitive adoption: order 2 should land
     closer to the Monte-Carlo ground truth than order 1 *)
  let inst =
    Instance.create ~num_users:1 ~num_items:2 ~horizon:2 ~display_limit:1 ~class_of:[| 0; 0 |]
      ~capacity:[| 1; 1 |] ~saturation:[| 0.7; 0.7 |]
      ~price:[| [| 6.0; 5.0 |]; [| 4.0; 4.5 |] |]
      ~adoption:[ (0, 0, [| 0.4; 0.5 |]); (0, 1, [| 0.6; 0.55 |]) ]
      ()
  in
  let s = Strategy.of_list inst [ triple 0 0 1; triple 0 1 2 ] in
  (* smooth price-to-probability link: Taylor needs differentiability over
     the sampled price range (a clamp kink would defeat any expansion) *)
  let q_of_price ~u:_ ~i:_ ~price = 0.9 /. (1.0 +. exp ((price -. 5.0) /. 2.0)) in
  let model =
    {
      Random_price.mean = (fun ~i ~time -> Instance.price inst ~i ~time);
      sigma = (fun ~i:_ ~time:_ -> 0.8);
      corr = 0.3;
      q_of_price;
    }
  in
  let truth = (Random_price.mc_revenue inst model s ~samples:400_000 (Rng.create 9)).Revmax_stats.Mc.mean in
  let t1 = Random_price.taylor_revenue ~order:`One inst model s in
  let t2 = Random_price.taylor_revenue ~order:`Two inst model s in
  Alcotest.(check bool)
    (Printf.sprintf "order2 (%.5f) closer than order1 (%.5f) to truth (%.5f)" t2 t1 truth)
    true
    (Float.abs (t2 -. truth) <= Float.abs (t1 -. truth) +. 1e-4)

let test_mean_instance_structure () =
  let inst = example4_instance () in
  let model =
    {
      Random_price.mean = (fun ~i:_ ~time:_ -> 2.0);
      sigma = (fun ~i:_ ~time:_ -> 0.5);
      corr = 0.0;
      q_of_price = (fun ~u:_ ~i:_ ~price -> Revmax_prelude.Util.clamp_prob (1.0 -. (price /. 4.0)));
    }
  in
  let inst' = Random_price.mean_instance inst model in
  check_float "mean price installed" 2.0 (Instance.price inst' ~i:0 ~time:1);
  check_float "q recomputed" 0.5 (Instance.q inst' ~u:0 ~i:0 ~time:1);
  Alcotest.(check int) "same users" (Instance.num_users inst) (Instance.num_users inst');
  Alcotest.(check int) "same horizon" (Instance.horizon inst) (Instance.horizon inst');
  check_float "saturation preserved" 0.1 (Instance.saturation inst' 0)

let test_mc_corr_validation () =
  let inst = example4_instance () in
  let s = Strategy.of_list inst [ triple 0 0 1 ] in
  let model =
    {
      Random_price.mean = (fun ~i:_ ~time:_ -> 1.0);
      sigma = (fun ~i:_ ~time:_ -> 0.1);
      corr = 2.0;
      q_of_price = (fun ~u:_ ~i:_ ~price:_ -> 0.5);
    }
  in
  Alcotest.check_raises "corr out of range"
    (Invalid_argument "Random_price: corr must be in [0,1]") (fun () ->
      ignore (Random_price.mc_revenue inst model s ~samples:10 (Rng.create 0)))

let () =
  Alcotest.run "relaxed"
    [
      ( "relaxed",
        [
          QCheck_alcotest.to_alcotest prop_relaxed_equals_strict_when_within_capacity;
          Alcotest.test_case "over capacity" `Quick test_effective_probability_over_capacity;
          QCheck_alcotest.to_alcotest prop_relaxed_le_unconstrained;
        ] );
      ( "local_search",
        [
          Alcotest.test_case "1/5-of-optimum bound" `Slow test_local_search_quality;
          Alcotest.test_case "oracle calls" `Quick test_local_search_reports_oracle_calls;
          Alcotest.test_case "Lemma 2 matroid" `Quick test_display_matroid_lemma2;
        ] );
      ( "random_price",
        [
          Alcotest.test_case "zero variance" `Quick test_taylor_zero_variance_reduces_to_deterministic;
          Alcotest.test_case "exact on quadratic" `Slow test_taylor_exact_on_quadratic;
          Alcotest.test_case "order 2 beats order 1" `Slow test_taylor_order2_beats_order1;
          Alcotest.test_case "mean instance" `Quick test_mean_instance_structure;
          Alcotest.test_case "corr validation" `Quick test_mc_corr_validation;
        ] );
    ]
