(** Matroids over an integer ground set [0 .. ground_size − 1].

    §4.2 of the paper turns the display constraint of REVMAX into a partition
    matroid (Lemma 2): project triples onto (user, time) pairs; each block
    may carry at most [k] selected triples. This module provides that
    matroid, the uniform matroid, and the independence oracles used by the
    local-search approximation algorithm in {!Submodular}. *)

type t
(** An abstract matroid with an independence oracle. *)

val uniform : ground:int -> rank:int -> t
(** Independent sets are those of size ≤ [rank]. *)

val partition : part_of:int array -> bound:int array -> t
(** [partition ~part_of ~bound]: element [e] belongs to block [part_of.(e)];
    a set is independent iff it has at most [bound.(b)] elements in every
    block [b]. Raises [Invalid_argument] if some [part_of.(e)] is outside
    [bound]'s index range. *)

val ground_size : t -> int

val rank_upper_bound : t -> int
(** An upper bound on the matroid's rank (exact for the provided matroids). *)

val is_independent : t -> int list -> bool
(** Full independence test. Duplicate elements make a set dependent. *)

val can_add : t -> int list -> int -> bool
(** [can_add m s e] assumes [s] independent and [e ∉ s]; true iff
    [s ∪ {e}] is independent. O(|s|) for the provided matroids. *)

val check_axioms :
  t -> samples:int -> Revmax_prelude.Rng.t -> (unit, string) Stdlib.result
(** Randomized check of the three matroid axioms (∅ independent; downward
    closure; augmentation) on sampled independent sets — a test helper that
    returns a description of the first violated axiom, if any. Exhaustive for
    tiny ground sets, sampled otherwise. *)
