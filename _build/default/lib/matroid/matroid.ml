module Rng = Revmax_prelude.Rng

type t =
  | Uniform of { ground : int; rank : int }
  | Partition of { ground : int; part_of : int array; bound : int array }

let uniform ~ground ~rank =
  if ground < 0 || rank < 0 then invalid_arg "Matroid.uniform: negative parameter";
  Uniform { ground; rank }

let partition ~part_of ~bound =
  let ground = Array.length part_of in
  Array.iter
    (fun b ->
      if b < 0 || b >= Array.length bound then invalid_arg "Matroid.partition: block out of range")
    part_of;
  Array.iter (fun b -> if b < 0 then invalid_arg "Matroid.partition: negative bound") bound;
  Partition { ground; part_of; bound }

let ground_size = function Uniform { ground; _ } -> ground | Partition { ground; _ } -> ground

let rank_upper_bound = function
  | Uniform { ground; rank } -> min ground rank
  | Partition { part_of; bound; _ } ->
      (* sum of bounds over non-empty blocks *)
      let used = Array.make (Array.length bound) false in
      Array.iter (fun b -> used.(b) <- true) part_of;
      let acc = ref 0 in
      Array.iteri (fun b u -> if u then acc := !acc + bound.(b)) used;
      !acc

let no_duplicates s =
  let tbl = Hashtbl.create (List.length s) in
  List.for_all
    (fun e ->
      if Hashtbl.mem tbl e then false
      else begin
        Hashtbl.add tbl e ();
        true
      end)
    s

let is_independent t s =
  no_duplicates s
  &&
  match t with
  | Uniform { ground; rank } ->
      List.length s <= rank && List.for_all (fun e -> e >= 0 && e < ground) s
  | Partition { ground; part_of; bound } ->
      let counts = Array.make (Array.length bound) 0 in
      List.for_all
        (fun e ->
          e >= 0 && e < ground
          &&
          let b = part_of.(e) in
          counts.(b) <- counts.(b) + 1;
          counts.(b) <= bound.(b))
        s

let can_add t s e =
  match t with
  | Uniform { ground; rank } -> e >= 0 && e < ground && List.length s < rank
  | Partition { ground; part_of; bound } ->
      e >= 0 && e < ground
      &&
      let b = part_of.(e) in
      let in_block = List.fold_left (fun n x -> if part_of.(x) = b then n + 1 else n) 0 s in
      in_block < bound.(b)

let check_axioms t ~samples rng =
  let n = ground_size t in
  if not (is_independent t []) then Error "empty set is not independent"
  else begin
    let sample_independent () =
      (* grow a random independent set *)
      let order = Rng.permutation rng n in
      let s = ref [] in
      Array.iter (fun e -> if can_add t !s e && Rng.bool rng then s := e :: !s) order;
      !s
    in
    let violation = ref None in
    let record msg = if !violation = None then violation := Some msg in
    for _ = 1 to samples do
      if !violation = None then begin
        let s = sample_independent () in
        if not (is_independent t s) then record "can_add admitted a dependent set";
        (* downward closure: drop a random element *)
        (match s with
        | [] -> ()
        | _ ->
            let drop = List.nth s (Rng.int rng (List.length s)) in
            let sub = List.filter (fun e -> e <> drop) s in
            if not (is_independent t sub) then record "downward closure violated");
        (* augmentation: compare with an independently sampled set *)
        let s' = sample_independent () in
        let small, large = if List.length s < List.length s' then (s, s') else (s', s) in
        if List.length small < List.length large then begin
          let extends =
            List.exists (fun e -> (not (List.mem e small)) && can_add t small e) large
          in
          if not extends then record "augmentation violated"
        end
      end
    done;
    match !violation with None -> Ok () | Some msg -> Error msg
  end
