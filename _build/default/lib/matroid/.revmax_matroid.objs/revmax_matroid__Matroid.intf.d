lib/matroid/matroid.mli: Revmax_prelude Stdlib
