lib/matroid/submodular.ml: Array Float Hashtbl List Matroid
