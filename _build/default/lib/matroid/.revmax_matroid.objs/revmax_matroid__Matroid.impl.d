lib/matroid/matroid.ml: Array Hashtbl List Revmax_prelude
