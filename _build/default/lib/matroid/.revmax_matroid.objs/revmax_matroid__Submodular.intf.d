lib/matroid/submodular.mli: Matroid
