(** Experiment sizing and seeding.

    The paper's experiments run on 23K/21.3K-user datasets and synthetic
    sweeps up to 250M candidate triples on a 256 GB server. Three scales are
    provided, selected by the [REVMAX_SCALE] environment variable:

    - [Quick] — smoke-test sizes; the full benchmark suite finishes in well
      under a minute. Used while iterating.
    - [Default] — roughly 1/15 of the paper's user counts; every
      table/figure reproduces with the paper's qualitative shape in a few
      minutes of wall clock.
    - [Full] — the paper's dataset dimensions (hours of wall clock).

    [REVMAX_SEED] overrides the master seed (default 20140901 — the paper's
    crawl start date). *)

type scale = Quick | Default | Full

type t = {
  scale : scale;
  seed : int;
  rlg_permutations : int;  (** N for RL-Greedy; the paper uses 20 *)
}

val load : unit -> t
(** Read [REVMAX_SCALE] ("quick" | "default" | "full") and [REVMAX_SEED]. *)

val of_scale : ?seed:int -> scale -> t

val scale_name : scale -> string

val amazon_scale : t -> Revmax_datagen.Amazon_like.scale
val epinions_scale : t -> Revmax_datagen.Epinions_like.scale

val capacity_mean : users:int -> float
(** Paper ratio: capacities average ≈ 22% of the user count
    (N(5000, 200–300) for 21–23K users). *)

val cap_gaussian : t -> users:int -> Revmax_datagen.Pipeline.capacity_spec
val cap_exponential : t -> users:int -> Revmax_datagen.Pipeline.capacity_spec
val cap_power : t -> users:int -> Revmax_datagen.Pipeline.capacity_spec
val cap_uniform : t -> users:int -> Revmax_datagen.Pipeline.capacity_spec

val fig6_user_counts : t -> int list
(** The scalability sweep (paper: 100K…500K users). *)

val fig6_base : t -> Revmax_datagen.Scalability.config
(** Scalability generator configuration at this scale (user count is swept
    with {!Revmax_datagen.Scalability.with_users}). *)
