lib/experiments/experiments.mli: Config
