lib/experiments/experiments.ml: Array Config Datasets Hashtbl List Printf Revmax Revmax_datagen Revmax_mf Revmax_prelude Revmax_stats Runner String
