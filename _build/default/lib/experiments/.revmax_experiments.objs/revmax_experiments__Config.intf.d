lib/experiments/config.mli: Revmax_datagen
