lib/experiments/config.ml: Float Option Printf Revmax_datagen String Sys
