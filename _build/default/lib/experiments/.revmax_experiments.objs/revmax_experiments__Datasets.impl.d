lib/experiments/datasets.ml: Config Hashtbl Printf Revmax_datagen
