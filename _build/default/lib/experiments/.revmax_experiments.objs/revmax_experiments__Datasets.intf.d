lib/experiments/datasets.mli: Config Revmax Revmax_datagen
