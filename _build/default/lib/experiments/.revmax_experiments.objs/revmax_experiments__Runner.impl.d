lib/experiments/runner.ml: List Printf Revmax Revmax_prelude
