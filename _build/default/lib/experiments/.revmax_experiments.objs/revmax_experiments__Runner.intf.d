lib/experiments/runner.mli: Revmax
