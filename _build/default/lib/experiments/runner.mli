(** Shared machinery for running the §6 algorithm suite and reporting. *)

type timed_result = {
  algo : Revmax.Algorithms.t;
  revenue : float;  (** expected total revenue of the returned strategy *)
  seconds : float;  (** wall-clock planning time *)
  strategy_size : int;
}

val run_suite :
  ?suite:Revmax.Algorithms.t list ->
  rlg_permutations:int ->
  seed:int ->
  Revmax.Instance.t ->
  timed_result list
(** Run the (default: paper's six-algorithm) suite on one instance. The
    RL-Greedy entry's permutation count is overridden by
    [rlg_permutations]. Every returned strategy is checked valid — a
    violation raises, so experiment output can never silently come from an
    invalid plan. *)

val header : string list
(** Column labels in paper legend order: GG, GG-No, RLG, SLG, TopRev,
    TopRat. *)

val revenue_row : timed_result list -> string list
(** Revenues formatted for a table row, suite order. *)

val time_row : timed_result list -> string list
(** Planning times (seconds) formatted for a table row. *)

val section : string -> unit
(** Print a section banner for an experiment. *)
