module Algorithms = Revmax.Algorithms
module Strategy = Revmax.Strategy
module Revenue = Revmax.Revenue
module Util = Revmax_prelude.Util

type timed_result = {
  algo : Algorithms.t;
  revenue : float;
  seconds : float;
  strategy_size : int;
}

let resolve_suite ~rlg_permutations = function
  | Some s -> s
  | None ->
      List.map
        (function Algorithms.Rl_greedy _ -> Algorithms.Rl_greedy rlg_permutations | a -> a)
        Algorithms.default_suite

let run_suite ?suite ~rlg_permutations ~seed inst =
  List.map
    (fun algo ->
      let s, seconds = Util.time_it (fun () -> Algorithms.run algo inst ~seed) in
      if not (Strategy.is_valid s) then
        failwith (Printf.sprintf "Runner: %s produced an invalid strategy" (Algorithms.name algo));
      { algo; revenue = Revenue.total s; seconds; strategy_size = Strategy.size s })
    (resolve_suite ~rlg_permutations suite)

let header = List.map Algorithms.name Algorithms.default_suite

let revenue_row results = List.map (fun r -> Printf.sprintf "%.1f" r.revenue) results

let time_row results = List.map (fun r -> Printf.sprintf "%.2f" r.seconds) results

let section title =
  Printf.printf "\n=== %s ===\n%!" title
