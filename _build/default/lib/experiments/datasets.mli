(** Memoized dataset preparation for the experiment suite.

    Preparing a dataset (ratings → MF training → candidate computation) is
    the expensive, experiment-independent step; every table/figure then
    instantiates it with its own capacities/saturation. The cache keys on
    the configuration's scale and seed so all experiments in one benchmark
    run share the same prepared data, exactly as the paper reuses one crawl
    across its figures. *)

val amazon : Config.t -> Revmax_datagen.Pipeline.t
val epinions : Config.t -> Revmax_datagen.Pipeline.t

val both : Config.t -> Revmax_datagen.Pipeline.t list
(** [amazon; epinions] — the iteration order of the paper's figures. *)

val instance :
  Config.t ->
  Revmax_datagen.Pipeline.t ->
  capacity:Revmax_datagen.Pipeline.capacity_spec ->
  beta:Revmax_datagen.Pipeline.beta_spec ->
  ?singleton_classes:bool ->
  unit ->
  Revmax.Instance.t
(** Instantiate with the configuration's seed (derived per capacity/beta so
    different settings draw different but reproducible randomness). *)
