module Pipeline = Revmax_datagen.Pipeline
module Amazon_like = Revmax_datagen.Amazon_like
module Epinions_like = Revmax_datagen.Epinions_like

let cache : (string, Pipeline.t) Hashtbl.t = Hashtbl.create 8

let memo key build =
  match Hashtbl.find_opt cache key with
  | Some p -> p
  | None ->
      let p = build () in
      Hashtbl.replace cache key p;
      p

let amazon (cfg : Config.t) =
  let key = Printf.sprintf "amazon-%s-%d" (Config.scale_name cfg.Config.scale) cfg.Config.seed in
  memo key (fun () -> Amazon_like.prepare ~scale:(Config.amazon_scale cfg) ~seed:cfg.Config.seed ())

let epinions (cfg : Config.t) =
  let key =
    Printf.sprintf "epinions-%s-%d" (Config.scale_name cfg.Config.scale) cfg.Config.seed
  in
  memo key (fun () ->
      Epinions_like.prepare ~scale:(Config.epinions_scale cfg) ~seed:(cfg.Config.seed + 1) ())

let both cfg = [ amazon cfg; epinions cfg ]

let instance (cfg : Config.t) prepared ~capacity ~beta ?(singleton_classes = false) () =
  (* derive a distinct but reproducible seed per experimental setting *)
  let tag =
    Printf.sprintf "%s|%s|%s|%b" prepared.Pipeline.name
      (Pipeline.capacity_name capacity)
      (match beta with Pipeline.Beta_uniform -> "u" | Pipeline.Beta_fixed b -> string_of_float b)
      singleton_classes
  in
  let seed = cfg.Config.seed + (Hashtbl.hash tag land 0xFFFF) in
  Pipeline.instantiate ~capacity ~beta ~singleton_classes ~seed prepared
