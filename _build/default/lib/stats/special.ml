(* erfc with fractional error < 1.2e-7 everywhere (Numerical Recipes §6.2,
   Chebyshev fit to the scaled complementary error function). *)
let erfc x =
  let z = Float.abs x in
  let t = 1.0 /. (1.0 +. (0.5 *. z)) in
  let poly =
    -1.26551223
    +. t
       *. (1.00002368
          +. t
             *. (0.37409196
                +. t
                   *. (0.09678418
                      +. t
                         *. (-0.18628806
                            +. t
                               *. (0.27886807
                                  +. t
                                     *. (-1.13520398
                                        +. t
                                           *. (1.48851587
                                              +. t *. (-0.82215223 +. (t *. 0.17087277)))))))))
  in
  let ans = t *. exp ((-.z *. z) +. poly) in
  if x >= 0.0 then ans else 2.0 -. ans

let erf x = 1.0 -. erfc x

let sqrt_2pi = sqrt (2.0 *. Float.pi)

let gaussian_pdf ~mean ~sigma x =
  if sigma <= 0.0 then invalid_arg "Special.gaussian_pdf: sigma must be positive";
  let z = (x -. mean) /. sigma in
  exp (-0.5 *. z *. z) /. (sigma *. sqrt_2pi)

let gaussian_cdf ~mean ~sigma x =
  if sigma <= 0.0 then invalid_arg "Special.gaussian_cdf: sigma must be positive";
  0.5 *. erfc (-.(x -. mean) /. (sigma *. sqrt 2.0))

let gaussian_sf ~mean ~sigma x =
  if sigma <= 0.0 then invalid_arg "Special.gaussian_sf: sigma must be positive";
  0.5 *. erfc ((x -. mean) /. (sigma *. sqrt 2.0))

let log_factorial =
  let table_size = 256 in
  let table = lazy (
    let t = Array.make table_size 0.0 in
    for n = 2 to table_size - 1 do
      t.(n) <- t.(n - 1) +. log (float_of_int n)
    done;
    t)
  in
  fun n ->
    if n < 0 then invalid_arg "Special.log_factorial: negative argument";
    if n < table_size then (Lazy.force table).(n)
    else begin
      (* Stirling series with 1/(12n) correction *)
      let x = float_of_int n in
      (x *. log x) -. x +. (0.5 *. log (2.0 *. Float.pi *. x)) +. (1.0 /. (12.0 *. x))
    end
