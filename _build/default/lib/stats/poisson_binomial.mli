(** Poisson-binomial distribution: the number of successes among independent
    Bernoulli trials with heterogeneous probabilities.

    This is the exact tool behind the paper's capacity factor
    [B_S(i,t) = Pr\[at most q_i − 1 users in S_{i,t} adopt i\]]
    (Definition 4). The paper computes it "exactly in worst-case exponential
    time" or by Monte-Carlo; the standard dynamic program below is exact in
    [O(n · min(n, m+1))] time and is what the library uses by default, with
    Monte-Carlo retained for cross-validation. *)

val pmf : float array -> float array
(** [pmf ps] is the full probability mass function: element [j] is
    [Pr\[exactly j successes\]], length [Array.length ps + 1]. O(n²). *)

val at_most : float array -> int -> float
(** [at_most ps m = Pr\[#successes ≤ m\]], exact DP truncated at [m+1]
    states: O(n · (m+1)). [m < 0] gives 0; [m ≥ n] gives 1. *)

val at_least : float array -> int -> float
(** [at_least ps m = Pr\[#successes ≥ m\]]. *)

val mean : float array -> float
(** Expected number of successes [Σ p_j]. *)

val monte_carlo_at_most :
  float array -> int -> samples:int -> Revmax_prelude.Rng.t -> float
(** Monte-Carlo estimate of [at_most], for testing the DP against the
    paper's suggested estimator. *)
