type estimate = { mean : float; std_error : float; samples : int }

let estimate ~samples rng f =
  if samples <= 0 then invalid_arg "Mc.estimate: samples must be positive";
  let acc = ref 0.0 and acc2 = ref 0.0 in
  for _ = 1 to samples do
    let v = f rng in
    acc := !acc +. v;
    acc2 := !acc2 +. (v *. v)
  done;
  let n = float_of_int samples in
  let mean = !acc /. n in
  let var = Float.max 0.0 ((!acc2 /. n) -. (mean *. mean)) in
  let std_error = if samples > 1 then sqrt (var /. (n -. 1.0)) else Float.infinity in
  { mean; std_error; samples }

let ci95 e = (e.mean -. (1.96 *. e.std_error), e.mean +. (1.96 *. e.std_error))

let within_ci e x = Float.abs (x -. e.mean) <= 4.0 *. e.std_error +. 1e-12
