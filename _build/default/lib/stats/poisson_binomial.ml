module Rng = Revmax_prelude.Rng

let check ps =
  Array.iter
    (fun p ->
      if p < 0.0 || p > 1.0 || Float.is_nan p then
        invalid_arg "Poisson_binomial: probabilities must lie in [0,1]")
    ps

let pmf ps =
  check ps;
  let n = Array.length ps in
  let dp = Array.make (n + 1) 0.0 in
  dp.(0) <- 1.0;
  for i = 0 to n - 1 do
    let p = ps.(i) in
    (* descending j so dp.(j-1) is still the previous round's value *)
    for j = i + 1 downto 1 do
      dp.(j) <- (dp.(j) *. (1.0 -. p)) +. (dp.(j - 1) *. p)
    done;
    dp.(0) <- dp.(0) *. (1.0 -. p)
  done;
  dp

let at_most ps m =
  check ps;
  let n = Array.length ps in
  if m < 0 then 0.0
  else if m >= n then 1.0
  else begin
    (* truncated DP: states 0..m plus an absorbing ">m" bucket *)
    let dp = Array.make (m + 1) 0.0 in
    dp.(0) <- 1.0;
    for i = 0 to n - 1 do
      let p = ps.(i) in
      for j = min m (i + 1) downto 1 do
        dp.(j) <- (dp.(j) *. (1.0 -. p)) +. (dp.(j - 1) *. p)
      done;
      dp.(0) <- dp.(0) *. (1.0 -. p)
    done;
    let acc = ref 0.0 in
    Array.iter (fun x -> acc := !acc +. x) dp;
    Float.min 1.0 !acc
  end

let at_least ps m =
  if m <= 0 then 1.0 else 1.0 -. at_most ps (m - 1)

let mean ps =
  check ps;
  Array.fold_left ( +. ) 0.0 ps

let monte_carlo_at_most ps m ~samples rng =
  check ps;
  if samples <= 0 then invalid_arg "Poisson_binomial.monte_carlo_at_most: samples must be positive";
  let hits = ref 0 in
  for _ = 1 to samples do
    let successes = ref 0 in
    Array.iter (fun p -> if Rng.bernoulli rng p then incr successes) ps;
    if !successes <= m then incr hits
  done;
  float_of_int !hits /. float_of_int samples
