(** Special functions needed by the statistical substrate.

    OCaml's standard library has no error function; the valuation model of
    the paper (§6.1) needs [Pr\[val ≥ p\] = ½(1 − erf((p−μ)/(√2 σ)))], so we
    provide an [erf] accurate to ~1.2e-7 relative error (sufficient for
    probability estimation from noisy data) together with the Gaussian
    pdf/cdf built on it. *)

val erf : float -> float
(** Gauss error function. *)

val erfc : float -> float
(** Complementary error function [1 - erf x], computed without cancellation
    for large [x]. *)

val gaussian_pdf : mean:float -> sigma:float -> float -> float
(** Normal density. [sigma] must be positive. *)

val gaussian_cdf : mean:float -> sigma:float -> float -> float
(** Normal cumulative distribution function. *)

val gaussian_sf : mean:float -> sigma:float -> float -> float
(** Normal survival function [Pr\[X ≥ x\]] — the paper's
    [Pr\[val_ui ≥ p(i,t)\]] valuation-exceedance probability. *)

val log_factorial : int -> float
(** [log n!], exact summation for small [n], Stirling series beyond. *)
