(** Gaussian-kernel kernel density estimation with Silverman's
    rule-of-thumb bandwidth — the price/valuation learning pipeline of §6.1.

    Given the list of prices reported for an item, the paper fits
    [f̂(x) = 1/(n·h) Σ_j φ((x − p_j)/h)] with the standard Gaussian kernel
    [φ] and bandwidth [h* = (4σ̂⁵ / 3n)^{1/5}], samples [T] prices from the
    estimate, and reuses the estimate as the item's valuation distribution. *)

type t
(** A fitted density estimate. *)

val silverman_bandwidth : float array -> float
(** [h* = (4 σ̂⁵ / (3 n))^{1/5}] where [σ̂] is the sample standard deviation.
    Falls back to a small positive bandwidth when the sample is constant or a
    singleton so the estimate stays proper. *)

val fit : ?bandwidth:float -> float array -> t
(** Fit on a non-empty sample. [bandwidth] overrides Silverman's rule. *)

val bandwidth : t -> float
val sample_points : t -> float array

val pdf : t -> float -> float
(** Mixture density at a point. *)

val cdf : t -> float -> float
(** Exact mixture CDF (average of Gaussian CDFs centred at the data). *)

val sf : t -> float -> float
(** Survival function [Pr\[X ≥ x\]]. *)

val draw : t -> Revmax_prelude.Rng.t -> float
(** Sample from the estimated density: pick a data point uniformly, add
    Gaussian noise of scale [bandwidth]. *)

val draw_n : t -> Revmax_prelude.Rng.t -> int -> float array

val mean : t -> float
(** Mean of the estimated density (= sample mean). *)

val variance : t -> float
(** Variance of the estimated density (= sample variance + h²). *)

val gaussian_proxy : t -> Distribution.t
(** Single-Gaussian moment-matched summary of the estimate, used as the
    item's valuation distribution exactly as §6.1 does ("the distribution f_i
    remains Gaussian"): mean and variance are those of the KDE mixture. *)
