(** Monte-Carlo estimation helpers. *)

type estimate = {
  mean : float;
  std_error : float;
  samples : int;
}

val estimate : samples:int -> Revmax_prelude.Rng.t -> (Revmax_prelude.Rng.t -> float) -> estimate
(** [estimate ~samples rng f] averages [samples] evaluations of [f]. The
    standard error is the sample standard deviation divided by √samples. *)

val ci95 : estimate -> float * float
(** 95% normal confidence interval [(lo, hi)]. *)

val within_ci : estimate -> float -> bool
(** Whether a reference value lies inside a (slightly widened, 4σ) interval —
    the predicate used by stochastic tests to keep flakiness negligible. *)
