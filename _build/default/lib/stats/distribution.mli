(** Univariate probability distributions used throughout the data models:
    Gaussian valuations (§6.1), exponential and Gaussian capacities (§6.1),
    power-law capacities (Figure 1/7), log-normal base prices, and uniform
    synthetic prices (§6, synthetic data). *)

type t =
  | Gaussian of { mean : float; sigma : float }
  | Exponential of { rate : float }  (** inverse scale; mean is [1/rate] *)
  | Lognormal of { mu : float; sigma : float }
      (** parameters of the underlying normal *)
  | Uniform of { lo : float; hi : float }
  | Pareto of { alpha : float; x_min : float }
      (** power law with tail exponent [alpha] *)

val pdf : t -> float -> float
val cdf : t -> float -> float

val sf : t -> float -> float
(** Survival function [Pr\[X ≥ x\]]. *)

val mean : t -> float
(** Expected value. Raises [Invalid_argument] for a Pareto with
    [alpha <= 1] (infinite mean). *)

val sample : t -> Revmax_prelude.Rng.t -> float
(** One random deviate. *)

val sample_n : t -> Revmax_prelude.Rng.t -> int -> float array
(** [n] independent deviates. *)

val pp : Format.formatter -> t -> unit
