lib/stats/distribution.ml: Array Format Revmax_prelude Special
