lib/stats/kde.ml: Array Distribution Float Revmax_prelude Special
