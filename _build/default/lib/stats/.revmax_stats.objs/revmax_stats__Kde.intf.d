lib/stats/kde.mli: Distribution Revmax_prelude
