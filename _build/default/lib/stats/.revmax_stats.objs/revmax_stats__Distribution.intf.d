lib/stats/distribution.mli: Format Revmax_prelude
