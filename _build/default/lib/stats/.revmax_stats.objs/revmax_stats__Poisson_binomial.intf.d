lib/stats/poisson_binomial.mli: Revmax_prelude
