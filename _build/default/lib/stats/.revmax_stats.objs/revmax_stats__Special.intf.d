lib/stats/special.mli:
