lib/stats/mc.mli: Revmax_prelude
