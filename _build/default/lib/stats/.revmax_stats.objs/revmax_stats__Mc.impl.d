lib/stats/mc.ml: Float
