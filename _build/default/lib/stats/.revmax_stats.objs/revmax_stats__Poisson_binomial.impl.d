lib/stats/poisson_binomial.ml: Array Float Revmax_prelude
