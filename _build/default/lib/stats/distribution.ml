module Rng = Revmax_prelude.Rng

type t =
  | Gaussian of { mean : float; sigma : float }
  | Exponential of { rate : float }
  | Lognormal of { mu : float; sigma : float }
  | Uniform of { lo : float; hi : float }
  | Pareto of { alpha : float; x_min : float }

let pdf t x =
  match t with
  | Gaussian { mean; sigma } -> Special.gaussian_pdf ~mean ~sigma x
  | Exponential { rate } -> if x < 0.0 then 0.0 else rate *. exp (-.rate *. x)
  | Lognormal { mu; sigma } ->
      if x <= 0.0 then 0.0
      else Special.gaussian_pdf ~mean:mu ~sigma (log x) /. x
  | Uniform { lo; hi } -> if x < lo || x > hi then 0.0 else 1.0 /. (hi -. lo)
  | Pareto { alpha; x_min } ->
      if x < x_min then 0.0 else alpha *. (x_min ** alpha) /. (x ** (alpha +. 1.0))

let cdf t x =
  match t with
  | Gaussian { mean; sigma } -> Special.gaussian_cdf ~mean ~sigma x
  | Exponential { rate } -> if x < 0.0 then 0.0 else 1.0 -. exp (-.rate *. x)
  | Lognormal { mu; sigma } ->
      if x <= 0.0 then 0.0 else Special.gaussian_cdf ~mean:mu ~sigma (log x)
  | Uniform { lo; hi } ->
      if x < lo then 0.0 else if x > hi then 1.0 else (x -. lo) /. (hi -. lo)
  | Pareto { alpha; x_min } -> if x < x_min then 0.0 else 1.0 -. ((x_min /. x) ** alpha)

let sf t x = 1.0 -. cdf t x

let mean = function
  | Gaussian { mean; _ } -> mean
  | Exponential { rate } -> 1.0 /. rate
  | Lognormal { mu; sigma } -> exp (mu +. (0.5 *. sigma *. sigma))
  | Uniform { lo; hi } -> 0.5 *. (lo +. hi)
  | Pareto { alpha; x_min } ->
      if alpha <= 1.0 then invalid_arg "Distribution.mean: Pareto with alpha <= 1"
      else alpha *. x_min /. (alpha -. 1.0)

let sample t rng =
  match t with
  | Gaussian { mean; sigma } -> Rng.gaussian_mv rng ~mean ~sigma
  | Exponential { rate } -> Rng.exponential rng ~rate
  | Lognormal { mu; sigma } -> Rng.lognormal rng ~mu ~sigma
  | Uniform { lo; hi } -> Rng.uniform_in rng lo hi
  | Pareto { alpha; x_min } -> Rng.pareto rng ~alpha ~x_min

let sample_n t rng n = Array.init n (fun _ -> sample t rng)

let pp ppf = function
  | Gaussian { mean; sigma } -> Format.fprintf ppf "Gaussian(mean=%g, sigma=%g)" mean sigma
  | Exponential { rate } -> Format.fprintf ppf "Exponential(rate=%g)" rate
  | Lognormal { mu; sigma } -> Format.fprintf ppf "Lognormal(mu=%g, sigma=%g)" mu sigma
  | Uniform { lo; hi } -> Format.fprintf ppf "Uniform(%g, %g)" lo hi
  | Pareto { alpha; x_min } -> Format.fprintf ppf "Pareto(alpha=%g, x_min=%g)" alpha x_min
