module Rng = Revmax_prelude.Rng
module Util = Revmax_prelude.Util

type t = {
  factors : int;
  global_bias : float;
  user_bias : float array;
  item_bias : float array;
  user_vec : float array array;
  item_vec : float array array;
  r_min : float;
  r_max : float;
}

let num_users t = Array.length t.user_bias
let num_items t = Array.length t.item_bias

let init ~num_users ~num_items ~factors ~global_bias ~r_min ~r_max ~init_std rng =
  if factors <= 0 then invalid_arg "Mf_model.init: factors must be positive";
  if r_min >= r_max then invalid_arg "Mf_model.init: empty rating range";
  let vec () = Array.init factors (fun _ -> init_std *. Rng.gaussian rng) in
  {
    factors;
    global_bias;
    user_bias = Array.make num_users 0.0;
    item_bias = Array.make num_items 0.0;
    user_vec = Array.init num_users (fun _ -> vec ());
    item_vec = Array.init num_items (fun _ -> vec ());
    r_min;
    r_max;
  }

let dot a b =
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. (a.(i) *. b.(i))
  done;
  !acc

let predict t u i = t.global_bias +. t.user_bias.(u) +. t.item_bias.(i) +. dot t.user_vec.(u) t.item_vec.(i)

let predict_clamped t u i = Util.clamp ~lo:t.r_min ~hi:t.r_max (predict t u i)

let top_n t ~user ~n ?(exclude = []) () =
  let excluded = Hashtbl.create (List.length exclude) in
  List.iter (fun i -> Hashtbl.replace excluded i ()) exclude;
  let candidates = ref [] in
  for i = 0 to num_items t - 1 do
    if not (Hashtbl.mem excluded i) then candidates := (i, predict_clamped t user i) :: !candidates
  done;
  let arr = Array.of_list !candidates in
  Array.sort (fun (_, a) (_, b) -> compare b a) arr;
  Array.sub arr 0 (min n (Array.length arr))
