(** Sparse user–item rating data, the input of the matrix-factorization
    recommender substrate (§2 / §6 of the paper).

    Users and items are dense integer ids. The store keeps the observations
    in a flat array plus per-user indices, which is all SGD training and
    evaluation need. *)

type observation = { user : int; item : int; value : float }

type t

val create : num_users:int -> num_items:int -> observation list -> t
(** Build a store. Raises [Invalid_argument] on out-of-range ids. Duplicate
    (user, item) observations are kept as given (later folds may separate
    them). *)

val num_users : t -> int
val num_items : t -> int
val num_ratings : t -> int

val observations : t -> observation array
(** The backing array (not copied — do not mutate). *)

val by_user : t -> int -> observation array
(** All observations of one user. *)

val rated_items : t -> int -> int list
(** Item ids the user has rated (with multiplicity removed). *)

val value_range : t -> float * float
(** [(min, max)] observed rating values; [(0., 1.)] when empty. *)

val global_mean : t -> float
(** Mean observed rating; 0 when empty. *)

val split_folds : t -> folds:int -> Revmax_prelude.Rng.t -> (t * t) array
(** [split_folds t ~folds rng] produces [folds] (train, test) pairs for
    cross-validation; each observation appears in exactly one test fold. *)

val density : t -> float
(** Fraction of the user×item matrix that is observed. *)
