module Util = Revmax_prelude.Util

type config = { neighbours : int; min_overlap : int; shrinkage : float }

let default_config = { neighbours = 20; min_overlap = 2; shrinkage = 10.0 }

type t = {
  config : config;
  ratings : Ratings.t;
  sim : float array array; (* item x item adjusted-cosine *)
  item_mean : float array;
  user_mean : float array;
  global_mean : float;
  r_min : float;
  r_max : float;
  (* per user: (item, value) pairs for fast prediction *)
  user_rows : (int * float) array array;
}

let train ?(config = default_config) ratings =
  let num_users = Ratings.num_users ratings in
  let num_items = Ratings.num_items ratings in
  let global_mean = Ratings.global_mean ratings in
  let user_sum = Array.make num_users 0.0 and user_cnt = Array.make num_users 0 in
  let item_sum = Array.make num_items 0.0 and item_cnt = Array.make num_items 0 in
  Array.iter
    (fun (o : Ratings.observation) ->
      user_sum.(o.user) <- user_sum.(o.user) +. o.value;
      user_cnt.(o.user) <- user_cnt.(o.user) + 1;
      item_sum.(o.item) <- item_sum.(o.item) +. o.value;
      item_cnt.(o.item) <- item_cnt.(o.item) + 1)
    (Ratings.observations ratings);
  let user_mean =
    Array.init num_users (fun u ->
        if user_cnt.(u) = 0 then global_mean else user_sum.(u) /. float_of_int user_cnt.(u))
  in
  let item_mean =
    Array.init num_items (fun i ->
        if item_cnt.(i) = 0 then global_mean else item_sum.(i) /. float_of_int item_cnt.(i))
  in
  (* adjusted cosine: accumulate over users' co-rated item pairs *)
  let dot = Array.make_matrix num_items num_items 0.0 in
  let norm = Array.make num_items 0.0 in
  let overlap = Array.make_matrix num_items num_items 0 in
  let user_rows =
    Array.init num_users (fun u ->
        Array.map (fun (o : Ratings.observation) -> (o.item, o.value)) (Ratings.by_user ratings u))
  in
  Array.iteri
    (fun u row ->
      let centred = Array.map (fun (i, v) -> (i, v -. user_mean.(u))) row in
      Array.iter (fun (i, v) -> norm.(i) <- norm.(i) +. (v *. v)) centred;
      Array.iteri
        (fun a (i, vi) ->
          for b = a + 1 to Array.length centred - 1 do
            let j, vj = centred.(b) in
            let lo, hi = if i < j then (i, j) else (j, i) in
            dot.(lo).(hi) <- dot.(lo).(hi) +. (vi *. vj);
            overlap.(lo).(hi) <- overlap.(lo).(hi) + 1
          done)
        centred)
    user_rows;
  let sim = Array.make_matrix num_items num_items 0.0 in
  for i = 0 to num_items - 1 do
    for j = i + 1 to num_items - 1 do
      let n = overlap.(i).(j) in
      if n >= config.min_overlap && norm.(i) > 0.0 && norm.(j) > 0.0 then begin
        let raw = dot.(i).(j) /. (sqrt norm.(i) *. sqrt norm.(j)) in
        (* damp similarities supported by few co-raters *)
        let damped = raw *. (float_of_int n /. (float_of_int n +. config.shrinkage)) in
        sim.(i).(j) <- damped;
        sim.(j).(i) <- damped
      end
    done
  done;
  let r_min, r_max = Ratings.value_range ratings in
  { config; ratings; sim; item_mean; user_mean; global_mean; r_min; r_max; user_rows }

let similarity t i j = if i = j then 1.0 else t.sim.(i).(j)

let predict t u i =
  let row = t.user_rows.(u) in
  (* take the k most similar rated items with positive similarity *)
  let scored =
    Array.to_list row
    |> List.filter_map (fun (j, v) ->
           let s = if j = i then 0.0 else t.sim.(i).(j) in
           if s > 0.0 then Some (s, v, j) else None)
    |> List.sort (fun (s1, _, _) (s2, _, _) -> compare s2 s1)
    |> Util.take t.config.neighbours
  in
  let baseline = t.item_mean.(i) +. (t.user_mean.(u) -. t.global_mean) in
  match scored with
  | [] -> baseline
  | neighbours ->
      let num = ref 0.0 and den = ref 0.0 in
      List.iter
        (fun (s, v, j) ->
          num := !num +. (s *. (v -. t.item_mean.(j)));
          den := !den +. s)
        neighbours;
      t.item_mean.(i) +. (!num /. !den)

let predict_clamped t u i = Util.clamp ~lo:t.r_min ~hi:t.r_max (predict t u i)

let top_n t ~user ~n ?(exclude = []) () =
  let excluded = Hashtbl.create (List.length exclude) in
  List.iter (fun i -> Hashtbl.replace excluded i ()) exclude;
  let candidates = ref [] in
  for i = 0 to Ratings.num_items t.ratings - 1 do
    if not (Hashtbl.mem excluded i) then candidates := (i, predict_clamped t user i) :: !candidates
  done;
  let arr = Array.of_list !candidates in
  Array.sort (fun (_, a) (_, b) -> compare b a) arr;
  Array.sub arr 0 (min n (Array.length arr))
