let rmse model ratings =
  let obs = Ratings.observations ratings in
  let n = Array.length obs in
  if n = 0 then 0.0
  else begin
    let acc = ref 0.0 in
    Array.iter
      (fun (o : Ratings.observation) ->
        let e = o.value -. Mf_model.predict_clamped model o.user o.item in
        acc := !acc +. (e *. e))
      obs;
    sqrt (!acc /. float_of_int n)
  end

let cross_validate ?config ~folds ratings rng =
  let r_range = Ratings.value_range ratings in
  let splits = Ratings.split_folds ratings ~folds rng in
  let total =
    Array.fold_left
      (fun acc (train, test) ->
        let model = Trainer.train ?config ~r_range train rng in
        acc +. rmse model test)
      0.0 splits
  in
  total /. float_of_int folds
