module Rng = Revmax_prelude.Rng

type config = {
  factors : int;
  epochs : int;
  learning_rate : float;
  regularization : float;
  init_std : float;
  lr_decay : float;
}

let default_config =
  {
    factors = 16;
    epochs = 60;
    learning_rate = 0.025;
    regularization = 0.015;
    init_std = 0.1;
    lr_decay = 0.97;
  }

type history = { epoch : int; train_rmse : float }

let rmse_on model obs =
  let n = Array.length obs in
  if n = 0 then 0.0
  else begin
    let acc = ref 0.0 in
    Array.iter
      (fun (o : Ratings.observation) ->
        let e = o.value -. Mf_model.predict model o.user o.item in
        acc := !acc +. (e *. e))
      obs;
    sqrt (!acc /. float_of_int n)
  end

let train_with_history ?(config = default_config) ?r_range ratings rng =
  let r_min, r_max = match r_range with Some r -> r | None -> Ratings.value_range ratings in
  let model =
    Mf_model.init
      ~num_users:(Ratings.num_users ratings)
      ~num_items:(Ratings.num_items ratings)
      ~factors:config.factors ~global_bias:(Ratings.global_mean ratings) ~r_min ~r_max
      ~init_std:config.init_std rng
  in
  let obs = Ratings.observations ratings in
  let n = Array.length obs in
  let order = Array.init n (fun i -> i) in
  let lr = ref config.learning_rate in
  let history = ref [] in
  for epoch = 1 to config.epochs do
    Rng.shuffle rng order;
    Array.iter
      (fun idx ->
        let o = obs.(idx) in
        let u = o.user and i = o.item in
        let err = o.value -. Mf_model.predict model u i in
        let reg = config.regularization in
        model.user_bias.(u) <- model.user_bias.(u) +. (!lr *. (err -. (reg *. model.user_bias.(u))));
        model.item_bias.(i) <- model.item_bias.(i) +. (!lr *. (err -. (reg *. model.item_bias.(i))));
        let pu = model.user_vec.(u) and qi = model.item_vec.(i) in
        for f = 0 to config.factors - 1 do
          let puf = pu.(f) and qif = qi.(f) in
          pu.(f) <- puf +. (!lr *. ((err *. qif) -. (reg *. puf)));
          qi.(f) <- qif +. (!lr *. ((err *. puf) -. (reg *. qif)))
        done)
      order;
    lr := !lr *. config.lr_decay;
    history := { epoch; train_rmse = rmse_on model obs } :: !history
  done;
  (model, List.rev !history)

let train ?config ?r_range ratings rng = fst (train_with_history ?config ?r_range ratings rng)
