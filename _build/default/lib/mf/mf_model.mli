(** Biased matrix-factorization model (Koren, Bell, Volinsky 2009 — the
    paper's reference [18]): the predicted rating is

    [r̂_ui = μ + b_u + b_i + p_u · q_i]

    with [f]-dimensional latent vectors [p_u], [q_i]. The REVMAX pipeline
    uses the model only through [predict] / [predict_clamped] and [top_n]. *)

type t = {
  factors : int;
  global_bias : float;
  user_bias : float array;
  item_bias : float array;
  user_vec : float array array;  (** [num_users × factors] *)
  item_vec : float array array;  (** [num_items × factors] *)
  r_min : float;  (** rating-scale lower bound, for clamping *)
  r_max : float;  (** rating-scale upper bound *)
}

val num_users : t -> int
val num_items : t -> int

val init :
  num_users:int ->
  num_items:int ->
  factors:int ->
  global_bias:float ->
  r_min:float ->
  r_max:float ->
  init_std:float ->
  Revmax_prelude.Rng.t ->
  t
(** Model with small Gaussian-initialized latent vectors and zero biases. *)

val predict : t -> int -> int -> float
(** Raw (unclamped) prediction. *)

val predict_clamped : t -> int -> int -> float
(** Prediction clamped into [\[r_min, r_max\]] — the value fed to the
    adoption-probability formula [q = Pr\[val ≥ p\] · r̂/r_max] of §6. *)

val top_n : t -> user:int -> n:int -> ?exclude:int list -> unit -> (int * float) array
(** The [n] items with the highest clamped prediction for the user, best
    first, skipping [exclude] (e.g. already-rated items). *)
