module Util = Revmax_prelude.Util

type config = { alignment_weight : float }

let default_config = { alignment_weight = 1.5 }

type t = {
  config : config;
  features : float array array; (* item x feature, L2-normalized rows *)
  profiles : float array option array; (* user profiles, L2-normalized *)
  user_mean : float array;
  item_mean : float array;
  global_mean : float;
  r_min : float;
  r_max : float;
  num_items : int;
}

let l2_normalize v =
  let n = sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 v) in
  if n > 0.0 then Array.map (fun x -> x /. n) v else Array.copy v

let dot a b =
  let acc = ref 0.0 in
  Array.iteri (fun i x -> acc := !acc +. (x *. b.(i))) a;
  !acc

let train ?(config = default_config) ~item_features ratings =
  let num_items = Ratings.num_items ratings in
  let num_users = Ratings.num_users ratings in
  if Array.length item_features <> num_items then
    invalid_arg "Content_based.train: one feature row per item required";
  let dim = if num_items = 0 then 0 else Array.length item_features.(0) in
  if dim = 0 && num_items > 0 then invalid_arg "Content_based.train: empty feature vectors";
  Array.iter
    (fun row ->
      if Array.length row <> dim then
        invalid_arg "Content_based.train: inconsistent feature dimensions")
    item_features;
  let features = Array.map l2_normalize item_features in
  let global_mean = Ratings.global_mean ratings in
  let user_sum = Array.make num_users 0.0 and user_cnt = Array.make num_users 0 in
  let item_sum = Array.make num_items 0.0 and item_cnt = Array.make num_items 0 in
  Array.iter
    (fun (o : Ratings.observation) ->
      user_sum.(o.user) <- user_sum.(o.user) +. o.value;
      user_cnt.(o.user) <- user_cnt.(o.user) + 1;
      item_sum.(o.item) <- item_sum.(o.item) +. o.value;
      item_cnt.(o.item) <- item_cnt.(o.item) + 1)
    (Ratings.observations ratings);
  let user_mean =
    Array.init num_users (fun u ->
        if user_cnt.(u) = 0 then global_mean else user_sum.(u) /. float_of_int user_cnt.(u))
  in
  let item_mean =
    Array.init num_items (fun i ->
        if item_cnt.(i) = 0 then global_mean else item_sum.(i) /. float_of_int item_cnt.(i))
  in
  (* Rocchio profile: mean-centred-rating-weighted centroid of features *)
  let profiles =
    Array.init num_users (fun u ->
        let row = Ratings.by_user ratings u in
        if Array.length row = 0 then None
        else begin
          let acc = Array.make dim 0.0 in
          let weighted = ref false in
          Array.iter
            (fun (o : Ratings.observation) ->
              let w = o.value -. user_mean.(u) in
              if Float.abs w > 1e-12 then begin
                weighted := true;
                Array.iteri (fun f x -> acc.(f) <- acc.(f) +. (w *. x)) features.(o.item)
              end)
            row;
          if not !weighted then begin
            (* uniform centroid when every rating equals the user's mean *)
            Array.iter
              (fun (o : Ratings.observation) ->
                Array.iteri (fun f x -> acc.(f) <- acc.(f) +. x) features.(o.item))
              row
          end;
          let p = l2_normalize acc in
          if Array.for_all (fun x -> x = 0.0) p then None else Some p
        end)
  in
  let r_min, r_max = Ratings.value_range ratings in
  { config; features; profiles; user_mean; item_mean; global_mean; r_min; r_max; num_items }

let profile t u = Option.map Array.copy t.profiles.(u)

let predict t u i =
  match t.profiles.(u) with
  | None -> t.item_mean.(i) +. (t.user_mean.(u) -. t.global_mean)
  | Some p -> t.user_mean.(u) +. (t.config.alignment_weight *. dot p t.features.(i))

let predict_clamped t u i = Util.clamp ~lo:t.r_min ~hi:t.r_max (predict t u i)

let top_n t ~user ~n ?(exclude = []) () =
  let excluded = Hashtbl.create (List.length exclude) in
  List.iter (fun i -> Hashtbl.replace excluded i ()) exclude;
  let candidates = ref [] in
  for i = 0 to t.num_items - 1 do
    if not (Hashtbl.mem excluded i) then candidates := (i, predict_clamped t user i) :: !candidates
  done;
  let arr = Array.of_list !candidates in
  Array.sort (fun (_, a) (_, b) -> compare b a) arr;
  Array.sub arr 0 (min n (Array.length arr))
