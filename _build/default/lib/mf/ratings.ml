module Rng = Revmax_prelude.Rng

type observation = { user : int; item : int; value : float }

type t = {
  num_users : int;
  num_items : int;
  obs : observation array;
  user_index : int array array; (* observation indices per user *)
}

let create ~num_users ~num_items observations =
  let obs = Array.of_list observations in
  Array.iter
    (fun o ->
      if o.user < 0 || o.user >= num_users || o.item < 0 || o.item >= num_items then
        invalid_arg "Ratings.create: id out of range")
    obs;
  let buckets = Array.make num_users [] in
  Array.iteri (fun idx o -> buckets.(o.user) <- idx :: buckets.(o.user)) obs;
  let user_index = Array.map (fun l -> Array.of_list (List.rev l)) buckets in
  { num_users; num_items; obs; user_index }

let num_users t = t.num_users
let num_items t = t.num_items
let num_ratings t = Array.length t.obs
let observations t = t.obs

let by_user t u =
  if u < 0 || u >= t.num_users then invalid_arg "Ratings.by_user: user out of range";
  Array.map (fun idx -> t.obs.(idx)) t.user_index.(u)

let rated_items t u =
  let seen = Hashtbl.create 16 in
  Array.iter
    (fun idx ->
      let i = t.obs.(idx).item in
      if not (Hashtbl.mem seen i) then Hashtbl.add seen i ())
    t.user_index.(u);
  Hashtbl.fold (fun i () acc -> i :: acc) seen []

let value_range t =
  if Array.length t.obs = 0 then (0.0, 1.0)
  else
    Array.fold_left
      (fun (lo, hi) o -> (Float.min lo o.value, Float.max hi o.value))
      (t.obs.(0).value, t.obs.(0).value)
      t.obs

let global_mean t =
  let n = Array.length t.obs in
  if n = 0 then 0.0
  else Array.fold_left (fun acc o -> acc +. o.value) 0.0 t.obs /. float_of_int n

let split_folds t ~folds rng =
  if folds < 2 then invalid_arg "Ratings.split_folds: need at least 2 folds";
  let n = Array.length t.obs in
  let assignment = Array.init n (fun i -> i mod folds) in
  Rng.shuffle rng assignment;
  Array.init folds (fun fold ->
      let train = ref [] and test = ref [] in
      for idx = n - 1 downto 0 do
        let o = t.obs.(idx) in
        if assignment.(idx) = fold then test := o :: !test else train := o :: !train
      done;
      ( create ~num_users:t.num_users ~num_items:t.num_items !train,
        create ~num_users:t.num_users ~num_items:t.num_items !test ))

let density t =
  let cells = float_of_int t.num_users *. float_of_int t.num_items in
  if cells <= 0.0 then 0.0 else float_of_int (Array.length t.obs) /. cells
