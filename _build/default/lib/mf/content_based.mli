(** Content-based recommendation — the third recommender family of §2
    (besides memory-based and model-based CF), completing the framework's
    "allows any type of RS" claim with an executable instance.

    Items are described by caller-supplied feature vectors (e.g. a class
    one-hot plus a log-price coordinate, as the dataset generators can
    produce). A user's profile is the Rocchio-style weighted centroid of the
    features of the items she rated, weighted by her mean-centred ratings;
    the predicted rating is the user's mean shifted by the cosine alignment
    between her profile and the item's features, rescaled to the rating
    range. Cold users fall back to item/global means. *)

type config = {
  alignment_weight : float;
      (** rating points per unit of cosine alignment (default 1.5) *)
}

val default_config : config

type t

val train : ?config:config -> item_features:float array array -> Ratings.t -> t
(** [train ~item_features ratings]: one feature row per item (all the same
    positive length). O(ratings · features) time. *)

val profile : t -> int -> float array option
(** The user's learned profile vector ([None] for users with no usable
    ratings). Do not mutate. *)

val predict : t -> int -> int -> float
val predict_clamped : t -> int -> int -> float

val top_n : t -> user:int -> n:int -> ?exclude:int list -> unit -> (int * float) array
(** Same surface as {!Mf_model.top_n} / {!Knn.top_n}, so it plugs into
    {!Revmax_datagen.Pipeline.build_candidates_with}. *)
