(** Item-based k-nearest-neighbour collaborative filtering — the
    "memory-based CF" family of §2.

    The REVMAX framework is explicitly recommender-agnostic ("our framework
    allows any type of RS to be used, be it content-based, memory-based CF,
    or model-based"); this module provides the classic memory-based
    alternative to {!Mf_model} so the claim is actually exercisable: item
    similarities are adjusted-cosine over co-raters, and a user's predicted
    rating is the similarity-weighted average of her ratings on the target
    item's neighbours, falling back to item/global means.

    Predictions expose the same [predict_clamped] / [top_n] surface as the
    MF model, so {!Revmax_datagen.Pipeline.build_candidates_with} can build
    the REVMAX candidate set from either substrate. *)

type config = {
  neighbours : int;  (** k: neighbours considered per prediction *)
  min_overlap : int;  (** minimum co-raters for a similarity to count *)
  shrinkage : float;  (** damping of similarities with few co-raters *)
}

val default_config : config
(** 20 neighbours, overlap ≥ 2, shrinkage 10. *)

type t

val train : ?config:config -> Ratings.t -> t
(** Precompute item-item similarities; O(ratings² / users) time,
    O(items²) space — fine at the dataset scales of this repository. *)

val similarity : t -> int -> int -> float
(** Adjusted-cosine similarity between two items (0 when undefined). *)

val predict : t -> int -> int -> float
(** Raw prediction for (user, item). *)

val predict_clamped : t -> int -> int -> float
(** Prediction clamped to the observed rating range. *)

val top_n : t -> user:int -> n:int -> ?exclude:int list -> unit -> (int * float) array
(** The [n] items with the highest clamped prediction, best first. *)
