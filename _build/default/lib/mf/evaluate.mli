(** Accuracy evaluation of the MF substrate: RMSE and k-fold cross
    validation, matching the paper's methodology (five-fold CV RMSE of 0.91
    on Amazon and 1.04 on Epinions, §6.1). *)

val rmse : Mf_model.t -> Ratings.t -> float
(** Root-mean-square error of clamped predictions on a rating store. *)

val cross_validate :
  ?config:Trainer.config ->
  folds:int ->
  Ratings.t ->
  Revmax_prelude.Rng.t ->
  float
(** Mean test RMSE over [folds] train/test splits. *)
