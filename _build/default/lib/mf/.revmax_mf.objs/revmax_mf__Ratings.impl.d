lib/mf/ratings.ml: Array Float Hashtbl List Revmax_prelude
