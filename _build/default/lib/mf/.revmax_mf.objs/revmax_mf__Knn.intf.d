lib/mf/knn.mli: Ratings
