lib/mf/mf_model.mli: Revmax_prelude
