lib/mf/evaluate.mli: Mf_model Ratings Revmax_prelude Trainer
