lib/mf/mf_model.ml: Array Hashtbl List Revmax_prelude
