lib/mf/ratings.mli: Revmax_prelude
