lib/mf/trainer.ml: Array List Mf_model Ratings Revmax_prelude
