lib/mf/knn.ml: Array Hashtbl List Ratings Revmax_prelude
