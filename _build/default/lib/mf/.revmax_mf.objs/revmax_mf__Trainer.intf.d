lib/mf/trainer.mli: Mf_model Ratings Revmax_prelude
