lib/mf/content_based.mli: Ratings
