lib/mf/evaluate.ml: Array Mf_model Ratings Trainer
