lib/mf/content_based.ml: Array Float Hashtbl List Option Ratings Revmax_prelude
