(** Stochastic-gradient-descent training of the biased MF model with the
    RMSE loss — the "vanilla MF model (we used the stochastic gradient
    descent algorithm)" of §6. *)

type config = {
  factors : int;  (** latent dimensionality [f] *)
  epochs : int;  (** full passes over the training data *)
  learning_rate : float;
  regularization : float;  (** L2 penalty on biases and vectors *)
  init_std : float;  (** scale of the latent-vector initialization *)
  lr_decay : float;  (** multiplicative learning-rate decay per epoch *)
}

val default_config : config
(** 16 factors, 60 epochs, lr 0.025 (decay 0.97), reg 0.015, init 0.1. *)

val train :
  ?config:config ->
  ?r_range:float * float ->
  Ratings.t ->
  Revmax_prelude.Rng.t ->
  Mf_model.t
(** Train on the full store. [r_range] fixes the rating scale used for
    clamping (default: the observed range). Deterministic given the RNG. *)

type history = { epoch : int; train_rmse : float }

val train_with_history :
  ?config:config ->
  ?r_range:float * float ->
  Ratings.t ->
  Revmax_prelude.Rng.t ->
  Mf_model.t * history list
(** Same, also reporting the training RMSE after each epoch (ascending
    epoch order) — used by tests to assert that SGD actually descends. *)
