lib/pqueue/binary_heap.mli:
