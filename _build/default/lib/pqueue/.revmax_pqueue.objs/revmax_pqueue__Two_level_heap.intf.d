lib/pqueue/two_level_heap.mli:
