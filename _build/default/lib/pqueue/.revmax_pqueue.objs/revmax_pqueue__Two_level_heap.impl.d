lib/pqueue/two_level_heap.ml: Binary_heap Hashtbl List Option
