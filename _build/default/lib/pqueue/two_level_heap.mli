(** The two-level heap of §5.1 of the paper.

    Elements are grouped by an integer [pair] (in the paper: a (user, item)
    pair). Each group is a small lower-level max-heap over its elements (in
    the paper: the time steps of that pair); a master upper-level heap orders
    the groups by the key of their lower-level root. The globally best
    element is always the root of the upper-level root's lower heap.

    The payoff over one giant heap is that key updates triggered by a greedy
    selection only traverse a lower heap of at most [T] elements plus the
    upper heap of at most [|U|·|I|] groups — the rationale given in the
    paper, and measured by the [abl-heap] benchmark. *)

type 'a t

val create : unit -> 'a t

val size : 'a t -> int
(** Total number of stored elements across all groups. *)

val is_empty : 'a t -> bool

val insert : 'a t -> pair:int -> key:float -> 'a -> unit
(** Add an element to group [pair]; O(log) in the group and upper sizes. *)

val find_max : 'a t -> (int * 'a * float) option
(** Best element overall as [(pair, element, key)]; O(1). *)

val delete_max : 'a t -> (int * 'a * float) option
(** Remove and return the best element, fixing up both levels. Empty groups
    are dropped from the upper level. *)

val refresh_pair : 'a t -> int -> f:('a -> float -> float option) -> unit
(** [refresh_pair t pair ~f] recomputes the key of every element in group
    [pair]: [f elt old_key] returns the new key, or [None] to discard the
    element. The group is re-heapified in O(group size) and the upper level
    is updated. No-op if the group does not exist. This is the bulk
    "recompute all stale triples of the lower heap" step of Algorithm 1. *)

val drop_pair : 'a t -> int -> unit
(** Remove an entire group (e.g. when a constraint permanently rules out all
    of its elements). No-op if absent. *)

val pair_size : 'a t -> int -> int
(** Number of elements currently in a group (0 if absent). *)

val iter : 'a t -> (int -> 'a -> float -> unit) -> unit
(** Visit every stored element. The callback must not modify the heap. *)
