(** Maximum binary heap over float keys with stable handles.

    Each inserted element returns a handle through which its key can later be
    updated ([update_key]) or the element removed ([remove]) in O(log n).
    This supports the Decrease-Key operations required by the lazy-forward
    greedy selection of the paper (§5.1) and by Dijkstra's algorithm in the
    min-cost-flow substrate. *)

type 'a t
(** A heap holding elements of type ['a]. *)

type 'a handle
(** Stable reference to an element inside a heap. A handle becomes invalid
    once its element has been removed; [contains] reports validity. *)

val create : ?capacity:int -> unit -> 'a t
(** Fresh empty heap. [capacity] is a size hint. *)

val size : 'a t -> int
(** Number of elements currently stored. *)

val is_empty : 'a t -> bool

val insert : 'a t -> key:float -> 'a -> 'a handle
(** Add an element with the given priority; O(log n). *)

val find_max : 'a t -> ('a * float) option
(** Highest-priority element and its key, without removing it; O(1). *)

val find_max_handle : 'a t -> 'a handle option
(** Handle of the highest-priority element; O(1). *)

val delete_max : 'a t -> ('a * float) option
(** Remove and return the highest-priority element; O(log n). *)

val update_key : 'a t -> 'a handle -> float -> unit
(** Change an element's priority (up or down); O(log n). Raises
    [Invalid_argument] if the handle is no longer in the heap. *)

val remove : 'a t -> 'a handle -> unit
(** Remove an arbitrary element; O(log n). Raises [Invalid_argument] if the
    handle is no longer in the heap. *)

val contains : 'a t -> 'a handle -> bool
(** Whether the handle still refers to a stored element of this heap. *)

val key : 'a handle -> float
(** Current key of a (valid) handle. *)

val value : 'a handle -> 'a
(** Element carried by the handle. *)

val iter : 'a t -> ('a -> float -> unit) -> unit
(** Visit all stored elements in unspecified order. The callback must not
    modify the heap. *)

val of_list : (float * 'a) list -> 'a t
(** Bulk build (heapify) in O(n). *)

val to_sorted_list : 'a t -> ('a * float) list
(** Non-destructive: all elements in descending key order; O(n log n). *)
