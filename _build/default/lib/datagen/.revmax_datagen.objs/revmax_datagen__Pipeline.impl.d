lib/datagen/pipeline.ml: Array Catalog Float List Revmax Revmax_mf Revmax_prelude Revmax_stats Valuation
