lib/datagen/catalog.ml: Array Revmax_prelude
