lib/datagen/scalability.mli: Pipeline Revmax
