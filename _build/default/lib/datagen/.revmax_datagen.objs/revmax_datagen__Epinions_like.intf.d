lib/datagen/epinions_like.mli: Pipeline
