lib/datagen/price_model.mli: Revmax_prelude
