lib/datagen/ratings_gen.ml: Array Hashtbl Revmax_mf Revmax_prelude
