lib/datagen/epinions_like.ml: Array Catalog Float Pipeline Price_model Ratings_gen Revmax_mf Revmax_prelude Revmax_stats
