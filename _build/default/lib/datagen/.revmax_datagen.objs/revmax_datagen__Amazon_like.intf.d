lib/datagen/amazon_like.mli: Pipeline
