lib/datagen/valuation.mli: Revmax_stats
