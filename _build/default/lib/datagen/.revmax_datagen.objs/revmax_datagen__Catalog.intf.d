lib/datagen/catalog.mli: Revmax_prelude
