lib/datagen/price_model.ml: Array Revmax_prelude
