lib/datagen/amazon_like.ml: Array Catalog Pipeline Price_model Ratings_gen Revmax_mf Revmax_prelude Revmax_stats
