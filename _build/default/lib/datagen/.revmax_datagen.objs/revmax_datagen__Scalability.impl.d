lib/datagen/scalability.ml: Array Catalog Float Pipeline Price_model Revmax Revmax_prelude
