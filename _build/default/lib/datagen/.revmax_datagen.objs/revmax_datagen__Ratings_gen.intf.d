lib/datagen/ratings_gen.mli: Revmax_mf Revmax_prelude
