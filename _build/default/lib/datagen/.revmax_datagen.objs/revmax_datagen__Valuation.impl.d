lib/datagen/valuation.ml: Array Revmax_prelude Revmax_stats
