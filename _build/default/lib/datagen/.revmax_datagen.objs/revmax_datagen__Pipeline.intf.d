lib/datagen/pipeline.mli: Revmax Revmax_mf Revmax_stats
