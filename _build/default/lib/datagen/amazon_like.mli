(** The Amazon-like dataset: a synthetic stand-in for the paper's crawl of
    5000 popular Electronics items with 62 days of daily prices and 681K
    historical ratings from 23K users (§6.1).

    What is reproduced (see DESIGN.md §3 for the substitution argument):
    - heavy-tailed class sizes (94 classes; largest ≫ median, Table 1);
    - per-class log-normal base prices with the Electronics price spread;
    - daily price fluctuation with scheduled sales over a 62-day crawl, from
      which a 7-day window becomes the recommendation horizon;
    - per-item valuation distributions estimated by Gaussian-kernel KDE over
      the item's crawled daily prices (the same machinery §6.1 applies to
      Epinions price reports);
    - ratings with ≈30 observations/user on which a vanilla MF model is
      trained, whose top-100 predictions per user define the candidates.

    The default scale divides the paper's user count by 10 (2.3K users,
    420 items) so the whole evaluation suite runs on a laptop; [paper_scale]
    restores the crawl's dimensions. *)

type scale = {
  num_users : int;
  num_items : int;
  num_classes : int;
  top_n : int;  (** candidate items per user *)
  horizon : int;
  crawl_days : int;
  ratings_per_user : float;
}

val default_scale : scale
val paper_scale : scale

val prepare : ?scale:scale -> seed:int -> unit -> Pipeline.t
(** Deterministic in [seed]. *)
