(** Item-catalog structure: assignment of items to competition classes.

    Table 1 of the paper shows heavily skewed class sizes on Amazon (largest
    1081, median 12 out of 4.2K items in 94 classes) and mild skew on
    Epinions (largest 52, median 27); [zipf_classes] reproduces that shape
    with a Zipf weight per class. *)

val zipf_classes :
  ?exponent:float ->
  num_items:int ->
  num_classes:int ->
  Revmax_prelude.Rng.t ->
  int array
(** Item-to-class assignment where class [c] receives items with probability
    ∝ [1/(c+1)^exponent] (default exponent 1.0). Every class is guaranteed
    at least one item (so class ids stay dense). Requires
    [num_items ≥ num_classes ≥ 1]. *)

val uniform_classes : num_items:int -> num_classes:int -> Revmax_prelude.Rng.t -> int array
(** Near-equal class sizes (random assignment). *)

val singleton_classes : num_items:int -> int array
(** Every item in its own class — the "class size = 1" setting of
    Figures 1(c,d) and 3. *)

val class_sizes : int array -> int array
(** Size of each class given an assignment. *)
