module Rng = Revmax_prelude.Rng

type series = { base : float; daily : float array }

let amazon_series ?(volatility = 0.03) ?(reversion = 0.25) ?(sale_probability = 0.08)
    ?(sale_depth = 0.3) ~base ~days rng =
  if base <= 0.0 then invalid_arg "Price_model.amazon_series: base must be positive";
  if days < 1 then invalid_arg "Price_model.amazon_series: days must be positive";
  let log_base = log base in
  let daily = Array.make days base in
  let log_p = ref log_base in
  let sale_left = ref 0 and sale_discount = ref 0.0 in
  for d = 0 to days - 1 do
    (* AR(1) around the base in log space *)
    log_p :=
      !log_p
      +. (reversion *. (log_base -. !log_p))
      +. (volatility *. Rng.gaussian rng);
    if !sale_left > 0 then decr sale_left
    else if Rng.bernoulli rng sale_probability then begin
      sale_left := Rng.int rng 3 (* sale spans this day plus 0–2 more *);
      sale_discount := Rng.uniform_in rng (0.3 *. sale_depth) sale_depth
    end;
    let discount = if !sale_left > 0 || !sale_discount > 0.0 then !sale_discount else 0.0 in
    (* a sale ends when its counter drains; reset the discount then *)
    if !sale_left = 0 then sale_discount := 0.0;
    daily.(d) <- exp !log_p *. (1.0 -. discount)
  done;
  { base; daily }

let reported_prices ?(dispersion = 0.15) ~base ~count rng =
  if base <= 0.0 then invalid_arg "Price_model.reported_prices: base must be positive";
  if count < 1 then invalid_arg "Price_model.reported_prices: count must be positive";
  Array.init count (fun _ -> Rng.lognormal rng ~mu:(log base) ~sigma:dispersion)

let uniform_series ~x ~days rng =
  if x <= 0.0 then invalid_arg "Price_model.uniform_series: x must be positive";
  { base = 1.5 *. x; daily = Array.init days (fun _ -> Rng.uniform_in rng x (2.0 *. x)) }

let window s ~start ~len =
  if start < 0 || len < 1 || start + len > Array.length s.daily then
    invalid_arg "Price_model.window: out of range";
  Array.sub s.daily start len
