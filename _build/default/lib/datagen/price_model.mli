(** Price time-series generators.

    The Amazon crawl of §6.1 recorded one price per item per day for 62 days
    and found frequent fluctuation (the Wall Street Journal's "toilet paper
    priced like airline tickets" phenomenon the paper cites). [amazon_series]
    reproduces that texture: a mean-reverting log-price AR(1) around a base
    price with occasional multi-day sale events (scheduled discounts, the
    dynamic-recommendation opportunity motivating the paper's §1 example).

    [reported_prices] produces the Epinions-style user-reported price
    samples — noisy observations of an item's street price across sellers —
    that feed the KDE pipeline of §6.1.

    [uniform_series] is the §6 synthetic model: [x_i ~ U\[10,500\]] and
    [p(i,t) ~ U\[x_i, 2 x_i\]]. *)

type series = {
  base : float;  (** the item's reference price *)
  daily : float array;  (** one price per day *)
}

val amazon_series :
  ?volatility:float ->
  ?reversion:float ->
  ?sale_probability:float ->
  ?sale_depth:float ->
  base:float ->
  days:int ->
  Revmax_prelude.Rng.t ->
  series
(** Mean-reverting log-AR(1) daily prices around [base]. [volatility]
    (default 0.03) is the daily log shock; [reversion] (default 0.25) the
    pull toward the base; each day starts a sale with probability
    [sale_probability] (default 0.08) applying a relative discount of up to
    [sale_depth] (default 0.3) for 1–3 days. *)

val reported_prices :
  ?dispersion:float -> base:float -> count:int -> Revmax_prelude.Rng.t -> float array
(** [count] user-reported prices, log-normally dispersed around [base]
    (default dispersion 0.15). *)

val uniform_series : x:float -> days:int -> Revmax_prelude.Rng.t -> series
(** §6 synthetic prices: each day uniform in [\[x, 2x\]]. *)

val window : series -> start:int -> len:int -> float array
(** Extract [len] consecutive days starting at day [start] (0-based) — the
    recommendation horizon cut out of a longer crawl. *)
