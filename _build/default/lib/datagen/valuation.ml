module Util = Revmax_prelude.Util
module Distribution = Revmax_stats.Distribution

let adoption_probability ~valuation ~rating ~r_max ~price =
  if r_max <= 0.0 then invalid_arg "Valuation.adoption_probability: r_max must be positive";
  let rating = Util.clamp ~lo:0.0 ~hi:r_max rating in
  Util.clamp_prob (Distribution.sf valuation price *. rating /. r_max)

let q_vector ~valuation ~rating ~r_max ~prices =
  Array.map (fun price -> adoption_probability ~valuation ~rating ~r_max ~price) prices
