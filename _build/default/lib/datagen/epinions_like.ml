module Rng = Revmax_prelude.Rng
module Kde = Revmax_stats.Kde
module Trainer = Revmax_mf.Trainer

type scale = {
  num_users : int;
  num_items : int;
  num_classes : int;
  top_n : int;
  horizon : int;
  reports_min : int;
  reports_max : int;
  ratings_per_user : float;
}

let default_scale =
  {
    num_users = 2130;
    num_items = 110;
    num_classes = 43;
    top_n = 100;
    horizon = 7;
    reports_min = 10;
    reports_max = 50;
    ratings_per_user = 1.6;
  }

let paper_scale =
  {
    num_users = 21_300;
    num_items = 1_100;
    num_classes = 43;
    top_n = 100;
    horizon = 7;
    reports_min = 10;
    reports_max = 50;
    ratings_per_user = 1.6;
  }

let r_max = 5.0

let prepare ?(scale = default_scale) ~seed () =
  let rng = Rng.create seed in
  (* Epinions class sizes are mildly skewed (Table 1: 10–52, median 27) *)
  let class_of =
    Catalog.zipf_classes ~exponent:0.4 ~num_items:scale.num_items ~num_classes:scale.num_classes
      (Rng.split rng)
  in
  let price_rng = Rng.split rng in
  let kdes =
    Array.init scale.num_items (fun _ ->
        let base = Rng.lognormal price_rng ~mu:(log 60.0) ~sigma:0.8 in
        let count =
          scale.reports_min + Rng.int price_rng (scale.reports_max - scale.reports_min + 1)
        in
        Kde.fit (Price_model.reported_prices ~base ~count price_rng))
  in
  (* §6.1: draw T samples from the estimate and use them as the week's
     prices (clamped to a positive floor — a KDE tail sample can dip) *)
  let price =
    Array.map
      (fun kde ->
        Array.map (fun p -> Float.max 1.0 p) (Kde.draw_n kde price_rng scale.horizon))
      kdes
  in
  let valuation = Array.map Kde.gaussian_proxy kdes in
  let ratings =
    Ratings_gen.generate
      ~config:
        {
          Ratings_gen.default_config with
          ratings_per_user = scale.ratings_per_user;
          r_max;
          r_min = 1.0;
        }
      ~num_users:scale.num_users ~num_items:scale.num_items (Rng.split rng)
  in
  let mf = Trainer.train ~r_range:(1.0, r_max) ratings (Rng.split rng) in
  let adoption, ratings_pred =
    Pipeline.build_candidates ~mf ~valuation ~price
      ~top_n:(min scale.top_n scale.num_items)
      ~r_max
  in
  {
    Pipeline.name = "Epinions";
    num_users = scale.num_users;
    num_items = scale.num_items;
    horizon = scale.horizon;
    class_of;
    price;
    adoption;
    ratings_pred;
    valuation;
    source_ratings = ratings;
    mf_model = mf;
  }
