(** The Epinions-like dataset: a synthetic stand-in for the paper's Epinions
    crawl (21.3K users, 1.1K items, 32.9K ratings, 43 classes, §6.1) whose
    distinguishing features are ultra-sparse ratings and {e user-reported
    prices} instead of a price time series.

    The §6.1 estimation pipeline is executed verbatim on synthetic price
    reports: each item's 10–50 reports are fitted with a Gaussian-kernel KDE
    under Silverman's bandwidth; T prices are drawn from the estimate and
    "treated as if they were the prices of i in a week"; and the same
    estimate serves as the item's valuation distribution, giving
    [Pr\[val ≥ p\] = ½(1 − erf((p − μ_i)/(√2 σ_i)))]. *)

type scale = {
  num_users : int;
  num_items : int;
  num_classes : int;
  top_n : int;
  horizon : int;
  reports_min : int;  (** fewest price reports per item (paper filter: 10) *)
  reports_max : int;
  ratings_per_user : float;
}

val default_scale : scale
val paper_scale : scale

val prepare : ?scale:scale -> seed:int -> unit -> Pipeline.t
(** Deterministic in [seed]. *)
