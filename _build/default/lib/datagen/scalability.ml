module Rng = Revmax_prelude.Rng
module Util = Revmax_prelude.Util
module Instance = Revmax.Instance

type config = {
  num_users : int;
  num_items : int;
  num_classes : int;
  items_per_user : int;
  horizon : int;
  capacity : Pipeline.capacity_spec;
  beta : Pipeline.beta_spec;
  display_limit : int;
}

let capacity_for_users n =
  (* the paper uses N(5000, 200–300) for ~21–23K users; keep the ratio *)
  let mean = Float.max 10.0 (0.22 *. float_of_int n) in
  Pipeline.Cap_gaussian { mean; sigma = 0.06 *. mean }

let default_config =
  {
    num_users = 10_000;
    num_items = 20_000;
    num_classes = 500;
    items_per_user = 100;
    horizon = 5;
    capacity = capacity_for_users 10_000;
    beta = Pipeline.Beta_uniform;
    display_limit = 5;
  }

let with_users c n = { c with num_users = n; capacity = capacity_for_users n }

let generate c ~seed =
  let rng = Rng.create seed in
  let class_of =
    Catalog.uniform_classes ~num_items:c.num_items ~num_classes:c.num_classes (Rng.split rng)
  in
  let price_rng = Rng.split rng in
  let price =
    Array.init c.num_items (fun _ ->
        let x = Rng.uniform_in price_rng 10.0 500.0 in
        (Price_model.uniform_series ~x ~days:c.horizon price_rng).daily)
  in
  (* per-item adoption level y_i *)
  let level = Array.init c.num_items (fun _ -> Rng.unit_float rng) in
  let cap_rng = Rng.split rng and beta_rng = Rng.split rng in
  let capacity =
    Array.init c.num_items (fun _ ->
        match c.capacity with
        | Pipeline.Cap_gaussian { mean; sigma } ->
            max 1 (int_of_float (Float.round (Rng.gaussian_mv cap_rng ~mean ~sigma)))
        | Pipeline.Cap_exponential { mean } ->
            max 1 (int_of_float (Float.round (Rng.exponential cap_rng ~rate:(1.0 /. mean))))
        | Pipeline.Cap_power { alpha; x_min } ->
            max 1 (int_of_float (Float.round (Rng.pareto cap_rng ~alpha ~x_min)))
        | Pipeline.Cap_uniform { lo; hi } -> lo + Rng.int cap_rng (hi - lo + 1)
        | Pipeline.Cap_fixed n -> n)
  in
  let saturation =
    Array.init c.num_items (fun _ ->
        match c.beta with
        | Pipeline.Beta_uniform -> Rng.unit_float beta_rng
        | Pipeline.Beta_fixed b -> b)
  in
  let adopt_rng = Rng.split rng in
  let adoption = ref [] in
  for u = 0 to c.num_users - 1 do
    let items =
      Rng.sample_without_replacement adopt_rng c.num_items (min c.items_per_user c.num_items)
    in
    Array.iter
      (fun i ->
        (* T probabilities around the item level, anti-monotone in price:
           the largest probability is matched to the cheapest time step *)
        let probs =
          Array.init c.horizon (fun _ ->
              Util.clamp_prob (Rng.gaussian_mv adopt_rng ~mean:level.(i) ~sigma:(sqrt 0.1)))
        in
        Array.sort compare probs;
        (* probs ascending *)
        let order = Util.with_index price.(i) in
        Array.sort (fun (_, p1) (_, p2) -> compare p2 p1) order;
        (* order: time indices from most expensive to cheapest *)
        let qs = Array.make c.horizon 0.0 in
        Array.iteri (fun pos (tidx, _) -> qs.(tidx) <- probs.(pos)) order;
        adoption := (u, i, qs) :: !adoption)
      items
  done;
  Instance.create ~num_users:c.num_users ~num_items:c.num_items ~horizon:c.horizon
    ~display_limit:c.display_limit ~class_of ~capacity ~saturation ~price ~adoption:!adoption ()

let table1_row c ~seed =
  let inst = generate c ~seed in
  let sizes = Array.init (Instance.num_classes inst) (Instance.class_size inst) in
  let sorted = Array.copy sizes in
  Array.sort compare sorted;
  let n = Array.length sorted in
  [
    "Synthetic";
    string_of_int c.num_users;
    string_of_int c.num_items;
    "n/a";
    string_of_int (Instance.num_candidate_triples inst);
    string_of_int n;
    string_of_int sorted.(n - 1);
    string_of_int sorted.(0);
    string_of_int sorted.(n / 2);
  ]
