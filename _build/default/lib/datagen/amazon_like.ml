module Rng = Revmax_prelude.Rng
module Kde = Revmax_stats.Kde
module Trainer = Revmax_mf.Trainer

type scale = {
  num_users : int;
  num_items : int;
  num_classes : int;
  top_n : int;
  horizon : int;
  crawl_days : int;
  ratings_per_user : float;
}

let default_scale =
  {
    num_users = 2300;
    num_items = 420;
    num_classes = 94;
    top_n = 100;
    horizon = 7;
    crawl_days = 62;
    ratings_per_user = 30.0;
  }

let paper_scale =
  {
    num_users = 23_000;
    num_items = 4_200;
    num_classes = 94;
    top_n = 100;
    horizon = 7;
    crawl_days = 62;
    ratings_per_user = 30.0;
  }

let r_max = 5.0

let prepare ?(scale = default_scale) ~seed () =
  let rng = Rng.create seed in
  let class_of =
    Catalog.zipf_classes ~exponent:1.2 ~num_items:scale.num_items ~num_classes:scale.num_classes
      (Rng.split rng)
  in
  (* per-class base price level: electronics range roughly $15–$600 *)
  let class_mu =
    Array.init scale.num_classes (fun _ -> Rng.uniform_in rng (log 15.0) (log 600.0))
  in
  let price_rng = Rng.split rng in
  let series =
    Array.init scale.num_items (fun i ->
        let base = Rng.lognormal price_rng ~mu:class_mu.(class_of.(i)) ~sigma:0.25 in
        Price_model.amazon_series ~base ~days:scale.crawl_days price_rng)
  in
  (* the horizon is one contiguous week of the crawl *)
  let start = Rng.int rng (scale.crawl_days - scale.horizon) in
  let price =
    Array.map (fun s -> Price_model.window s ~start ~len:scale.horizon) series
  in
  (* valuation: KDE over the item's full crawled price history *)
  let valuation =
    Array.map (fun (s : Price_model.series) -> Kde.gaussian_proxy (Kde.fit s.daily)) series
  in
  let ratings =
    Ratings_gen.generate
      ~config:
        {
          Ratings_gen.default_config with
          ratings_per_user = scale.ratings_per_user;
          r_max;
          r_min = 1.0;
        }
      ~num_users:scale.num_users ~num_items:scale.num_items (Rng.split rng)
  in
  let mf = Trainer.train ~r_range:(1.0, r_max) ratings (Rng.split rng) in
  let adoption, ratings_pred =
    Pipeline.build_candidates ~mf ~valuation ~price ~top_n:scale.top_n ~r_max
  in
  {
    Pipeline.name = "Amazon";
    num_users = scale.num_users;
    num_items = scale.num_items;
    horizon = scale.horizon;
    class_of;
    price;
    adoption;
    ratings_pred;
    valuation;
    source_ratings = ratings;
    mf_model = mf;
  }
