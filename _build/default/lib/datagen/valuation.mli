(** The adoption-probability link of §6: under the independent-private-value
    assumption each user's valuation of an item is drawn from the item's
    valuation distribution, and

    [q(u,i,t) = Pr\[val_ui ≥ p(i,t)\] · r̂_ui / r_max].

    Higher prices lower the exceedance probability, giving the
    anti-monotonicity in price the paper postulates (footnote 1: the
    framework does not {e require} it, but the learned model has it). *)

val adoption_probability :
  valuation:Revmax_stats.Distribution.t -> rating:float -> r_max:float -> price:float -> float
(** The §6 formula, clamped into [\[0,1\]]. [rating] is clamped into
    [\[0, r_max\]] first. *)

val q_vector :
  valuation:Revmax_stats.Distribution.t ->
  rating:float ->
  r_max:float ->
  prices:float array ->
  float array
(** Adoption probabilities across a price horizon. *)
