module Rng = Revmax_prelude.Rng

let check ~num_items ~num_classes =
  if num_classes < 1 || num_items < num_classes then
    invalid_arg "Catalog: need num_items >= num_classes >= 1"

let zipf_classes ?(exponent = 1.0) ~num_items ~num_classes rng =
  check ~num_items ~num_classes;
  let weights = Array.init num_classes (fun c -> 1.0 /. (float_of_int (c + 1) ** exponent)) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let cum = Array.make num_classes 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun c w ->
      acc := !acc +. (w /. total);
      cum.(c) <- !acc)
    weights;
  let pick () =
    let x = Rng.unit_float rng in
    let rec find c = if c >= num_classes - 1 || cum.(c) >= x then c else find (c + 1) in
    find 0
  in
  (* give every class one item first, then fill the rest by weight *)
  let assignment = Array.make num_items 0 in
  for c = 0 to num_classes - 1 do
    assignment.(c) <- c
  done;
  for i = num_classes to num_items - 1 do
    assignment.(i) <- pick ()
  done;
  Rng.shuffle rng assignment;
  assignment

let uniform_classes ~num_items ~num_classes rng =
  check ~num_items ~num_classes;
  let assignment = Array.init num_items (fun i -> i mod num_classes) in
  Rng.shuffle rng assignment;
  assignment

let singleton_classes ~num_items = Array.init num_items (fun i -> i)

let class_sizes assignment =
  let num_classes = Array.fold_left (fun m c -> max m (c + 1)) 0 assignment in
  let sizes = Array.make num_classes 0 in
  Array.iter (fun c -> sizes.(c) <- sizes.(c) + 1) assignment;
  sizes
