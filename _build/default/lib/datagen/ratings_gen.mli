(** Synthetic sparse rating data with a latent-factor ground truth.

    The real datasets' ratings are unavailable (crawled Amazon/Epinions
    data); this generator produces observations with the statistical
    properties the MF substrate and the REVMAX pipeline depend on: a
    low-rank structure the factorization can learn (so cross-validated RMSE
    is meaningfully below the rating scale's spread), additive noise (so it
    cannot be zero), power-law item popularity, and per-user activity
    matching each dataset's sparsity (≈30 ratings/user for the Amazon-like
    set, ≈1.5 for the ultra-sparse Epinions-like set). *)

type config = {
  factors : int;  (** rank of the ground-truth model *)
  ratings_per_user : float;  (** mean observations per user (≥ min 1) *)
  popularity_exponent : float;  (** Zipf skew of item popularity *)
  noise : float;  (** std of the additive rating noise *)
  r_min : float;
  r_max : float;
  mean_rating : float;
}

val default_config : config
(** 8 factors, 20 ratings/user, exponent 0.8, noise 0.6, scale 1–5,
    mean 3.5. *)

val generate :
  ?config:config -> num_users:int -> num_items:int -> Revmax_prelude.Rng.t -> Revmax_mf.Ratings.t
(** Each user rates a Poisson-distributed number of items sampled by
    popularity, without repetition; values are the ground-truth low-rank
    score plus noise, clamped to the rating scale. *)
