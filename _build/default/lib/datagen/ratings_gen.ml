module Rng = Revmax_prelude.Rng
module Util = Revmax_prelude.Util
module Ratings = Revmax_mf.Ratings

type config = {
  factors : int;
  ratings_per_user : float;
  popularity_exponent : float;
  noise : float;
  r_min : float;
  r_max : float;
  mean_rating : float;
}

let default_config =
  {
    factors = 8;
    ratings_per_user = 20.0;
    popularity_exponent = 0.8;
    noise = 0.6;
    r_min = 1.0;
    r_max = 5.0;
    mean_rating = 3.5;
  }

let poisson rng lambda =
  (* Knuth's method; lambda is small here *)
  let l = exp (-.lambda) in
  let rec go k p =
    let p = p *. Rng.unit_float rng in
    if p <= l then k else go (k + 1) p
  in
  go 0 1.0

let generate ?(config = default_config) ~num_users ~num_items rng =
  if num_users < 1 || num_items < 1 then invalid_arg "Ratings_gen.generate: empty dimensions";
  let f = config.factors in
  let scale = 1.0 /. sqrt (float_of_int f) in
  let vec () = Array.init f (fun _ -> scale *. Rng.gaussian rng) in
  let user_vec = Array.init num_users (fun _ -> vec ()) in
  let item_vec = Array.init num_items (fun _ -> vec ()) in
  let user_bias = Array.init num_users (fun _ -> 0.3 *. Rng.gaussian rng) in
  let item_bias = Array.init num_items (fun _ -> 0.3 *. Rng.gaussian rng) in
  (* popularity: a random permutation defines item "rank"; weight 1/rank^e *)
  let rank = Rng.permutation rng num_items in
  let weight = Array.make num_items 0.0 in
  Array.iteri
    (fun i r -> weight.(i) <- 1.0 /. (float_of_int (r + 1) ** config.popularity_exponent))
    rank;
  let cum = Array.make num_items 0.0 in
  let total = Array.fold_left ( +. ) 0.0 weight in
  let acc = ref 0.0 in
  Array.iteri
    (fun i w ->
      acc := !acc +. (w /. total);
      cum.(i) <- !acc)
    weight;
  let pick_item () =
    let x = Rng.unit_float rng in
    (* binary search on the cumulative weights *)
    let lo = ref 0 and hi = ref (num_items - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if cum.(mid) >= x then hi := mid else lo := mid + 1
    done;
    !lo
  in
  let dot a b =
    let s = ref 0.0 in
    for idx = 0 to f - 1 do
      s := !s +. (a.(idx) *. b.(idx))
    done;
    !s
  in
  let obs = ref [] in
  for u = 0 to num_users - 1 do
    let n = max 1 (poisson rng config.ratings_per_user) in
    let chosen = Hashtbl.create n in
    let attempts = ref 0 in
    while Hashtbl.length chosen < min n num_items && !attempts < 20 * n do
      incr attempts;
      let i = pick_item () in
      if not (Hashtbl.mem chosen i) then Hashtbl.add chosen i ()
    done;
    Hashtbl.iter
      (fun i () ->
        let value =
          config.mean_rating +. user_bias.(u) +. item_bias.(i)
          +. dot user_vec.(u) item_vec.(i)
          +. (config.noise *. Rng.gaussian rng)
        in
        let value = Util.clamp ~lo:config.r_min ~hi:config.r_max value in
        obs := { Ratings.user = u; item = i; value } :: !obs)
      chosen
  done;
  Ratings.create ~num_users ~num_items !obs
