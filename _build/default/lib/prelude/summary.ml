type t = {
  count : int;
  mean : float;
  std : float;
  min : float;
  max : float;
  median : float;
  q25 : float;
  q75 : float;
}

let quantile sorted p =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Summary.quantile: empty array";
  if n = 1 then sorted.(0)
  else begin
    let pos = p *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor pos) in
    let hi = min (lo + 1) (n - 1) in
    let frac = pos -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let of_array xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Summary.of_array: empty array";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let mean = Util.mean xs in
  let var =
    if n < 2 then 0.0
    else begin
      let acc = ref 0.0 in
      Array.iter
        (fun x ->
          let d = x -. mean in
          acc := !acc +. (d *. d))
        xs;
      !acc /. float_of_int (n - 1)
    end
  in
  {
    count = n;
    mean;
    std = sqrt var;
    min = sorted.(0);
    max = sorted.(n - 1);
    median = quantile sorted 0.5;
    q25 = quantile sorted 0.25;
    q75 = quantile sorted 0.75;
  }

let histogram ?(bins = 10) xs =
  let n = Array.length xs in
  if n = 0 || bins <= 0 then [||]
  else begin
    let lo = Array.fold_left Float.min xs.(0) xs in
    let hi = Array.fold_left Float.max xs.(0) xs in
    let width = if hi > lo then (hi -. lo) /. float_of_int bins else 1.0 in
    let counts = Array.make bins 0 in
    Array.iter
      (fun x ->
        let b = int_of_float ((x -. lo) /. width) in
        let b = if b >= bins then bins - 1 else if b < 0 then 0 else b in
        counts.(b) <- counts.(b) + 1)
      xs;
    Array.init bins (fun b ->
        (lo +. (float_of_int b *. width), lo +. (float_of_int (b + 1) *. width), counts.(b)))
  end

let pp ppf t =
  Format.fprintf ppf "n=%d mean=%.4g std=%.4g min=%.4g q25=%.4g med=%.4g q75=%.4g max=%.4g"
    t.count t.mean t.std t.min t.q25 t.median t.q75 t.max
