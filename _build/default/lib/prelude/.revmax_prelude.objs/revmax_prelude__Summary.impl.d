lib/prelude/summary.ml: Array Float Format Util
