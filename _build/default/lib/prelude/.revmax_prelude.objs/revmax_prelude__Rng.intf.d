lib/prelude/rng.mli:
