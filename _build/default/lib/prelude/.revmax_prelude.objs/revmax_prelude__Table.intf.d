lib/prelude/table.mli:
