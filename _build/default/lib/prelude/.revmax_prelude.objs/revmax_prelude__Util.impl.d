lib/prelude/util.ml: Array Float Hashtbl List Unix
