lib/prelude/summary.mli: Format
