(** Descriptive statistics over float samples. *)

type t = {
  count : int;
  mean : float;
  std : float;  (** sample standard deviation (n−1 denominator) *)
  min : float;
  max : float;
  median : float;
  q25 : float;  (** lower quartile (linear interpolation) *)
  q75 : float;  (** upper quartile (linear interpolation) *)
}

val of_array : float array -> t
(** Summary of a sample. Raises [Invalid_argument] on the empty array. *)

val quantile : float array -> float -> float
(** [quantile sorted p] is the [p]-quantile (0 ≤ p ≤ 1) of an already
    ascending-sorted array, with linear interpolation between order
    statistics. *)

val histogram : ?bins:int -> float array -> (float * float * int) array
(** [histogram ~bins xs] buckets [xs] into [bins] equal-width bins over
    [\[min xs, max xs\]] and returns [(lo, hi, count)] per bin. *)

val pp : Format.formatter -> t -> unit
(** Human-readable one-line rendering. *)
