(** Minimal ASCII table renderer for experiment reports.

    Benchmarks print paper-style tables ("rows/series the paper reports")
    through this module so that every experiment's output is uniform and easy
    to diff across runs. *)

type t

val create : columns:string list -> t
(** Table with the given header row. *)

val add_row : t -> string list -> unit
(** Append a row. Rows shorter than the header are right-padded with empty
    cells; longer rows raise [Invalid_argument]. *)

val add_floats : t -> label:string -> float list -> unit
(** Convenience: a row whose first cell is [label] and remaining cells are
    floats rendered with [%.4g]. *)

val render : t -> string
(** Render with aligned columns and a separator under the header. *)

val print : t -> unit
(** [render] to stdout, followed by a newline. *)
