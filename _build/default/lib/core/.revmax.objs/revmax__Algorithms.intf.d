lib/core/algorithms.mli: Instance Strategy
