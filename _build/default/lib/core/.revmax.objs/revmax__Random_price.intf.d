lib/core/random_price.mli: Instance Revmax_prelude Revmax_stats Strategy
