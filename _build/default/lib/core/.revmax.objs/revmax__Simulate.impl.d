lib/core/simulate.ml: Array Hashtbl Instance List Revenue Revmax_prelude Revmax_stats Strategy Triple
