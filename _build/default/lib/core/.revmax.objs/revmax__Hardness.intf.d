lib/core/hardness.mli: Instance
