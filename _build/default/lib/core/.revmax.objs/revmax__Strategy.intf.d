lib/core/strategy.mli: Format Hashtbl Instance Triple
