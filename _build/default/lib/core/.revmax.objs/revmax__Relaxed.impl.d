lib/core/relaxed.ml: Capacity_oracle Instance List Revenue Strategy Triple
