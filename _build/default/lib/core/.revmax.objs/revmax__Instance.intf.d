lib/core/instance.mli: Format Triple
