lib/core/local_search.ml: Array Instance List Relaxed Revmax_matroid Strategy Triple
