lib/core/io.ml: Array Fun In_channel Instance List Printf Strategy String Triple
