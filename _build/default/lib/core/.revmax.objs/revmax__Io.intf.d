lib/core/io.mli: Instance Strategy
