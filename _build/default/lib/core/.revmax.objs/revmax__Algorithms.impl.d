lib/core/algorithms.ml: Baselines Greedy Local_greedy Revmax_prelude String
