lib/core/revenue.mli: Instance Strategy Triple
