lib/core/random_price.ml: Array Float Hashtbl Instance List Revenue Revmax_prelude Revmax_stats Strategy Triple
