lib/core/relaxed.mli: Strategy Triple
