lib/core/triple.ml: Format Int
