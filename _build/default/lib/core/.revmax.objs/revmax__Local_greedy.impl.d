lib/core/local_greedy.ml: Array Greedy Hashtbl Instance List Revenue Revmax_pqueue Revmax_prelude Strategy Triple
