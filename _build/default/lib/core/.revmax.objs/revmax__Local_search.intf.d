lib/core/local_search.mli: Instance Strategy Triple
