lib/core/capacity_oracle.ml: Array Hashtbl Instance List Revenue Revmax_prelude Revmax_stats Simulate Strategy Triple
