lib/core/exact.mli: Instance Strategy
