lib/core/greedy.ml: Instance List Revenue Revmax_pqueue Strategy Triple
