lib/core/exact.ml: Array Instance Printf Revenue Revmax_flow Strategy Triple
