lib/core/instance.ml: Array Float Format Hashtbl List Triple
