lib/core/revenue.ml: Hashtbl Instance List Strategy Triple
