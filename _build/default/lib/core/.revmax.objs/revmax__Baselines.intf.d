lib/core/baselines.mli: Instance Strategy
