lib/core/triple.mli: Format
