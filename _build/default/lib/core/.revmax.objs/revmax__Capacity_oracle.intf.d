lib/core/capacity_oracle.mli: Revmax_prelude Strategy Triple
