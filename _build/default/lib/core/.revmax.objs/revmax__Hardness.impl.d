lib/core/hardness.ml: Array Instance Printf Revenue Strategy Triple
