lib/core/baselines.ml: Array Instance Revmax_prelude Strategy Triple
