lib/core/rolling.mli: Instance Strategy Triple
