lib/core/greedy.mli: Instance Strategy Triple
