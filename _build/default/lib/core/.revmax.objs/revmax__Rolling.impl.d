lib/core/rolling.ml: Greedy Instance List Local_greedy Revmax_prelude Strategy Triple
