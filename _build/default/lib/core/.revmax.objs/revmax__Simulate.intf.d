lib/core/simulate.mli: Instance Revmax_prelude Revmax_stats Strategy Triple
