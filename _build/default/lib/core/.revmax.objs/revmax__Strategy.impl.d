lib/core/strategy.ml: Array Format Hashtbl Instance List Triple
