lib/core/local_greedy.mli: Greedy Instance Revmax_prelude Strategy Triple
