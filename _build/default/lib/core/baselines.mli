(** The two static baselines of §6 ("Algorithms Evaluated").

    {b TopRA} (top rating) recommends to every user the k items with the
    highest predicted rating; {b TopRE} (top revenue) the k items with the
    highest static expected revenue — price × primitive adoption probability
    on the first time step's snapshot. Both are inherently static, so the
    chosen items are repeated at {e every} time step of the horizon, as the
    paper prescribes when evaluating them over [\[T\]].

    Interpretation choices (documented in DESIGN.md): the static snapshot is
    time 1; when an instance carries no predicted ratings, TopRA falls back
    to ranking by the mean primitive adoption probability over the horizon
    (monotone in the rating under the §6 estimation formula). Item capacity
    is enforced greedily — once an item's capacity is exhausted, later users
    receive their next-best item — so that both baselines always return
    valid strategies comparable with the greedy algorithms. *)

val top_rating : Instance.t -> Strategy.t
(** The TopRA baseline. *)

val top_revenue : Instance.t -> Strategy.t
(** The TopRE baseline. *)
