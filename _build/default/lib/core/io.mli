(** Plain-text serialization of instances and strategies.

    A downstream user needs to move problem instances between the generator,
    the planner and external tooling; this module defines a line-oriented,
    human-inspectable format (one logical record per line, `#` comments,
    whitespace-separated fields) with full round-tripping.

    Format (version header `revmax-instance 1`):
    {v
    revmax-instance 1
    dims <num_users> <num_items> <horizon> <display_limit>
    item <i> <class> <capacity> <saturation> <p(i,1)> ... <p(i,T)>   (per item)
    rating <u> <i> <r>                                               (optional)
    q <u> <i> <q(u,i,1)> ... <q(u,i,T)>                              (per candidate)
    end
    v}

    Strategies (`revmax-strategy 1`) are lists of `triple <u> <i> <t>` lines.
    Floats are printed with ["%.17g"] so round-trips are exact. *)

val write_instance : out_channel -> Instance.t -> unit

val read_instance : in_channel -> Instance.t
(** Raises [Failure] with a line-numbered message on malformed input. *)

val save_instance : string -> Instance.t -> unit
(** Write to a file path. *)

val load_instance : string -> Instance.t

val write_strategy : out_channel -> Strategy.t -> unit

val read_strategy : Instance.t -> in_channel -> Strategy.t
(** Triples are validated against the instance's dimensions. *)

val save_strategy : string -> Strategy.t -> unit
val load_strategy : Instance.t -> string -> Strategy.t
