module Rng = Revmax_prelude.Rng
module Mc = Revmax_stats.Mc

type model = {
  mean : i:int -> time:int -> float;
  sigma : i:int -> time:int -> float;
  corr : float;
  q_of_price : u:int -> i:int -> price:float -> float;
}

let mean_instance inst model =
  let horizon = Instance.horizon inst in
  let num_items = Instance.num_items inst in
  let price =
    Array.init num_items (fun i -> Array.init horizon (fun idx -> model.mean ~i ~time:(idx + 1)))
  in
  let adoption = ref [] and ratings = ref [] in
  for u = 0 to Instance.num_users inst - 1 do
    Array.iter
      (fun (i, _qs) ->
        let qs =
          Array.init horizon (fun idx ->
              model.q_of_price ~u ~i ~price:(model.mean ~i ~time:(idx + 1)))
        in
        adoption := (u, i, qs) :: !adoption;
        match Instance.rating inst ~u ~i with
        | Some r -> ratings := (u, i, r) :: !ratings
        | None -> ())
      (Instance.candidates inst u)
  done;
  Instance.create ~num_users:(Instance.num_users inst) ~num_items ~horizon
    ~display_limit:(Instance.display_limit inst)
    ~class_of:(Array.init num_items (Instance.class_of inst))
    ~capacity:(Array.init num_items (Instance.capacity inst))
    ~saturation:(Array.init num_items (Instance.saturation inst))
    ~price ~ratings:!ratings ~adoption:!adoption ()

(* Revenue contribution of triple [z] within its chain, as a function of the
   chain-prefix price vector. [prefix] lists the chain triples with τ ≤ t
   (time-ascending, z included); [prices.(a)] is the price of [prefix.(a)]. *)
let contribution inst model ~chain (z : Triple.t) ~prefix ~prices =
  let q_at a =
    let (z' : Triple.t) = prefix.(a) in
    model.q_of_price ~u:z'.u ~i:z'.i ~price:(Float.max 0.0 prices.(a))
  in
  let own = ref (-1) in
  Array.iteri (fun a z' -> if Triple.equal z' z then own := a) prefix;
  assert (!own >= 0);
  let m = Revenue.memory ~chain ~time:z.t in
  let sat = if m = 0.0 then 1.0 else Instance.saturation inst z.i ** m in
  let comp = ref 1.0 in
  Array.iteri
    (fun a (z' : Triple.t) ->
      if z'.t < z.t || (z'.t = z.t && z'.i <> z.i) then comp := !comp *. (1.0 -. q_at a))
    prefix;
  Float.max 0.0 prices.(!own) *. q_at !own *. sat *. !comp

let prefix_of chain (z : Triple.t) =
  Array.of_list (List.filter (fun (z' : Triple.t) -> z'.t <= z.t) chain)

let mean_prices model prefix =
  Array.map (fun (z' : Triple.t) -> model.mean ~i:z'.i ~time:z'.t) prefix

(* iterate over the strategy's (user, class) chains exactly once *)
let fold_chains s ~init ~f =
  let inst = Strategy.instance s in
  let seen = Hashtbl.create 64 in
  List.fold_left
    (fun acc (z : Triple.t) ->
      let cls = Instance.class_of inst z.i in
      let key = (z.u * Instance.num_classes inst) + cls in
      if Hashtbl.mem seen key then acc
      else begin
        Hashtbl.add seen key ();
        f acc (Strategy.chain s ~u:z.u ~cls)
      end)
    init (Strategy.to_list s)

let taylor_revenue ?(order = `Two) inst model s =
  fold_chains s ~init:0.0 ~f:(fun acc chain ->
      List.fold_left
        (fun acc (z : Triple.t) ->
          let prefix = prefix_of chain z in
          let means = mean_prices model prefix in
          let g prices = contribution inst model ~chain z ~prefix ~prices in
          let base = g means in
          match order with
          | `One -> acc +. base
          | `Two ->
              let n = Array.length prefix in
              let sigma_of a =
                let (z' : Triple.t) = prefix.(a) in
                model.sigma ~i:z'.i ~time:z'.t
              in
              let step a = Float.max 1e-5 (1e-3 *. Float.max 1.0 (Float.abs means.(a))) in
              let eval_at deltas =
                let prices = Array.copy means in
                List.iter (fun (a, d) -> prices.(a) <- prices.(a) +. d) deltas;
                g prices
              in
              let second = ref 0.0 in
              for a = 0 to n - 1 do
                let va = sigma_of a in
                if va > 0.0 then begin
                  let ha = step a in
                  (* diagonal: ½ g_aa var(z_a) *)
                  let gaa =
                    (eval_at [ (a, ha) ] -. (2.0 *. base) +. eval_at [ (a, -.ha) ]) /. (ha *. ha)
                  in
                  second := !second +. (0.5 *. gaa *. va *. va);
                  (* off-diagonal: g_ab cov(z_a, z_b) over a < b *)
                  for b = a + 1 to n - 1 do
                    let vb = sigma_of b in
                    if vb > 0.0 && model.corr <> 0.0 then begin
                      let hb = step b in
                      let gab =
                        (eval_at [ (a, ha); (b, hb) ]
                        -. eval_at [ (a, ha); (b, -.hb) ]
                        -. eval_at [ (a, -.ha); (b, hb) ]
                        +. eval_at [ (a, -.ha); (b, -.hb) ])
                        /. (4.0 *. ha *. hb)
                      in
                      second := !second +. (gab *. model.corr *. va *. vb)
                    end
                  done
                end
              done;
              acc +. base +. !second)
        acc chain)

let mc_revenue inst model s ~samples rng =
  if model.corr < 0.0 || model.corr > 1.0 then invalid_arg "Random_price: corr must be in [0,1]";
  Mc.estimate ~samples rng (fun rng ->
      fold_chains s ~init:0.0 ~f:(fun acc chain ->
          (* one correlated Gaussian price draw per chain: common factor w
             plus idiosyncratic noise gives pairwise correlation corr *)
          let w = Rng.gaussian rng in
          let chain_arr = Array.of_list chain in
          let prices_all =
            Array.map
              (fun (z' : Triple.t) ->
                let mu = model.mean ~i:z'.i ~time:z'.t in
                let sg = model.sigma ~i:z'.i ~time:z'.t in
                mu
                +. sg
                   *. ((sqrt model.corr *. w) +. (sqrt (1.0 -. model.corr) *. Rng.gaussian rng)))
              chain_arr
          in
          let price_of (z' : Triple.t) =
            let idx = ref (-1) in
            Array.iteri (fun a c -> if Triple.equal c z' then idx := a) chain_arr;
            prices_all.(!idx)
          in
          List.fold_left
            (fun acc (z : Triple.t) ->
              let prefix = prefix_of chain z in
              let prices = Array.map price_of prefix in
              acc +. contribution inst model ~chain z ~prefix ~prices)
            acc chain))
