(** The revenue model of §3.1: memory (Equation 1), dynamic adoption
    probability (Definition 1), the expected-revenue objective
    (Definition 2), and marginal revenue (Definition 3).

    Because a triple's dynamic adoption probability depends only on the
    same-user same-class triples at earlier-or-equal times, [Rev] decomposes
    over (user, class) chains; all functions below work on such chains and
    the hot path of every greedy algorithm — [marginal] — touches a single
    chain in O(m²) for a chain of m ≤ kT triples.

    All functions take [?with_saturation] (default [true]); [false] computes
    the β = 1 variant used by the GlobalNo baseline, which plans as though
    saturation did not exist. *)

val memory : chain:Triple.t list -> time:int -> float
(** [M_S(u,i,t)] (Equation 1): [Σ 1/(t−τ)] over chain triples with [τ < t].
    Note the memory is class-level — every same-class triple contributes,
    whichever item it recommends. *)

val dynamic_probability :
  ?with_saturation:bool -> Instance.t -> chain:Triple.t list -> Triple.t -> float
(** [dynamic_probability inst ~chain z] is [qS(z)] of Definition 1 where
    [chain] is the (user, class) chain of [z] in [S], {e including} [z]
    itself. The saturation exponent uses the chain's earlier triples; the
    competition products use primitive probabilities of earlier triples and
    of same-time triples recommending a different item. *)

val chain_revenue : ?with_saturation:bool -> Instance.t -> Triple.t list -> float
(** Expected revenue contributed by one chain:
    [Σ_{z ∈ chain} p(z.i, z.t) · qS(z)]. *)

val total : ?with_saturation:bool -> Strategy.t -> float
(** [Rev(S)] (Definition 2). *)

val dynamic_probability_in : ?with_saturation:bool -> Strategy.t -> Triple.t -> float
(** [qS(u,i,t)] for a triple of the strategy; 0 when [(u,i,t) ∉ S]
    (Definition 1's convention). *)

val marginal : ?with_saturation:bool -> Strategy.t -> Triple.t -> float
(** [RevS(z) = Rev(S ∪ {z}) − Rev(S)] (Definition 3): the gain from [z]
    itself minus the loss it inflicts on later same-class triples of the
    same user. 0 if [z ∈ S]. Does not check validity. *)
