(** The random-price extension of §7: prices [p(i,t)] are random variables
    known only through a price-prediction model, and the planner maximizes
    revenue in expectation over both adoption events and prices.

    A {!model} supplies per-(item, time) price means and standard
    deviations, a uniform pairwise correlation between distinct price
    variables, and the link [q_of_price] mapping a price to the primitive
    adoption probability (the §6.1 valuation formula
    [Pr\[val ≥ p\]·r̂/r_max] — adoption probabilities must follow prices for
    the extension to make sense, which is the paper's criticism of the naive
    approach).

    Three evaluators are provided:
    - [taylor_revenue ~order:`Two]: the paper's proposal — expand each
      triple's contribution [g(z)] around the mean price vector of its
      competing prefix [\[z\]_S] to second order, so that
      [E\[g\] ≈ g(z̄) + ½ Σ_{a,b} ∂²g/∂z_a∂z_b cov(z_a, z_b)]
      (Equation 7/8; we keep the Hessian factors the paper's Equation 8
      elides). Derivatives are central finite differences.
    - [taylor_revenue ~order:`One]: the "obvious" mean-price heuristic,
      [g(z̄)] alone.
    - [mc_revenue]: Monte-Carlo ground truth by sampling correlated Gaussian
      price vectors (negative samples are clamped at zero).

    [mean_instance] rebuilds the instance with mean prices and
    mean-price-consistent adoption probabilities, so any §5 algorithm can
    plan under price uncertainty; the resulting strategy is then scored by
    the evaluators above — the workflow of the [ext-taylor] benchmark. *)

type model = {
  mean : i:int -> time:int -> float;  (** E\[p(i,t)\] *)
  sigma : i:int -> time:int -> float;  (** std of p(i,t); 0 = deterministic *)
  corr : float;  (** pairwise correlation of distinct prices, in [0,1] *)
  q_of_price : u:int -> i:int -> price:float -> float;
      (** primitive adoption probability at a given price *)
}

val mean_instance : Instance.t -> model -> Instance.t
(** Same structure (classes, capacities, saturation, candidates, ratings),
    with prices replaced by their means and adoption probabilities recomputed
    through [q_of_price] at those means. *)

val taylor_revenue :
  ?order:[ `One | `Two ] -> Instance.t -> model -> Strategy.t -> float
(** Taylor-approximated expected revenue of a strategy under the price
    model (default [`Two]). The instance supplies structure only; prices
    and adoption probabilities come from the model. *)

val mc_revenue :
  Instance.t -> model -> Strategy.t -> samples:int -> Revmax_prelude.Rng.t ->
  Revmax_stats.Mc.estimate
(** Monte-Carlo expectation over price realizations (adoption uncertainty is
    integrated exactly per realization). *)
