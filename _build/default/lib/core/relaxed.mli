(** The relaxed revenue-maximization problem R-REVMAX of §4.2.

    R-REVMAX drops the hard capacity constraint and instead multiplies every
    triple's dynamic adoption probability by the capacity factor [B_S(i,t)]
    (Definition 4), yielding the {e effective} dynamic adoption probability
    [E_S(u,i,t)] (Equation 5). A strategy is valid when it merely satisfies
    the display constraint, which is a partition matroid (Lemma 2), so the
    objective below is exactly the non-negative non-monotone submodular
    function that {!Local_search} maximizes to a factor 1/(4+ε). *)

val effective_probability :
  ?oracle:(Strategy.t -> Triple.t -> float) -> Strategy.t -> Triple.t -> float
(** [E_S(u,i,t)] for a strategy triple (0 when absent):
    [qS(u,i,t) · B_S(i,t)]. [oracle] overrides the capacity-factor
    computation (default {!Capacity_oracle.prob_capacity_free}). *)

val total : ?oracle:(Strategy.t -> Triple.t -> float) -> Strategy.t -> float
(** The R-REVMAX objective [Σ p(i,t) · E_S(u,i,t)]. *)
