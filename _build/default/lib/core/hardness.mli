(** The NP-hardness reduction of Theorem 1, as executable code.

    The paper reduces the Restricted Timetable-Design problem (RTD, Even,
    Itai & Shamir 1975) to the decision version of REVMAX: craftsmen become
    users, the three hours become time steps, each job becomes a class of
    three unit-capacity items (one per hour) priced 1 exactly at "their"
    hour, and each craftsman gets a private expensive item that is adoptable
    precisely at his unavailable hours. A feasible timetable exists iff some
    valid strategy earns expected revenue ≥ N + Υ·E (N = total required
    work, Υ = total unavailable hours, E > N the expensive price).

    The module builds the reduction and provides a brute-force RTD solver so
    tests can verify both directions of the equivalence on small instances —
    a mechanical check of the proof of Theorem 1. *)

type rtd = {
  num_craftsmen : int;
  num_jobs : int;
  available : bool array array;
      (** [available.(c).(h)], h ∈ 0..2: craftsman [c] works at hour [h+1] *)
  requires : bool array array;
      (** [requires.(c).(b)]: craftsman [c] must spend one hour on job [b]
          (the paper's R(c,b) ∈ {0,1}) *)
}

val validate : rtd -> (unit, string) result
(** Check the RTD restrictions: three hours; every craftsman is available
    for exactly 2 or 3 hours and is {e tight}
    ([Σ_b R(c,b) = |A(c)|]). *)

val to_revmax : rtd -> Instance.t * float
(** The D-REVMAX instance and the decision threshold [N + Υ·E]. The
    instance has [3·num_jobs + num_craftsmen] items (expensive items in
    private classes), display limit 1, unit capacities on job items, and no
    saturation (the reduction needs none — Theorem 1 holds even with
    β = 1). *)

val feasible : rtd -> bool
(** Brute-force RTD solver (exponential; intended for instances with a
    handful of craftsmen and jobs). *)

val optimal_revenue : ?max_ground:int -> rtd -> float
(** [Exact.brute_force] on the reduced instance — exponential as Theorem 1
    demands. *)

val equivalence_holds : ?max_ground:int -> rtd -> bool
(** Check both directions of the reduction on one instance:
    [feasible rtd ⟺ optimal_revenue rtd ≥ threshold − ε]. *)
