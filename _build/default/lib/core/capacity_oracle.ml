module Util = Revmax_prelude.Util
module Pb = Revmax_stats.Poisson_binomial

let other_recipients s (z : Triple.t) =
  let per_user = Strategy.item_recommendations_up_to s ~i:z.i ~time:z.t in
  Hashtbl.remove per_user z.u;
  per_user

let adopter_probabilities s (z : Triple.t) =
  let per_user = other_recipients s z in
  let probs = ref [] in
  Hashtbl.iter
    (fun _v triples ->
      let p =
        List.fold_left (fun acc zt -> acc +. Revenue.dynamic_probability_in s zt) 0.0 triples
      in
      probs := Util.clamp_prob p :: !probs)
    per_user;
  Array.of_list !probs

let prob_capacity_free s (z : Triple.t) =
  let inst = Strategy.instance s in
  let cap = Instance.capacity inst z.i in
  let ps = adopter_probabilities s z in
  if Array.length ps < cap then 1.0 else Pb.at_most ps (cap - 1)

let prob_capacity_free_mc s (z : Triple.t) ~samples rng =
  if samples <= 0 then invalid_arg "Capacity_oracle.prob_capacity_free_mc: samples must be positive";
  let inst = Strategy.instance s in
  let cap = Instance.capacity inst z.i in
  let per_user = other_recipients s z in
  let users = Hashtbl.fold (fun v _ acc -> v :: acc) per_user [] in
  if List.length users < cap then 1.0
  else begin
    let hits = ref 0 in
    for _ = 1 to samples do
      let adopters = ref 0 in
      List.iter
        (fun v ->
          let chain = Strategy.chain s ~u:v ~cls:(Instance.class_of inst z.i) in
          match Simulate.simulate_chain inst chain rng with
          | Some (a : Triple.t) when a.i = z.i && a.t <= z.t -> incr adopters
          | Some _ | None -> ())
        users;
      if !adopters <= cap - 1 then incr hits
    done;
    float_of_int !hits /. float_of_int samples
  end
