(** The capacity factor [B_S(i,t)] of Definition 4: the probability that at
    most [q_i − 1] of the users who were recommended item [i] up to time [t]
    (other than the user under consideration) adopt it.

    The paper computes this "exactly in worst-case exponential time in q_i"
    or estimates it by Monte-Carlo. Because each user's adoption events for
    the item across time steps are mutually exclusive, user [v]'s probability
    of adopting [i] by time [t] is [Σ_{τ≤t, (v,i,τ)∈S} qS(v,i,τ)], and the
    number of adopters is Poisson-binomial over distinct users — computable
    exactly by the [O(n·q_i)] dynamic program of
    {!Revmax_stats.Poisson_binomial}. Both the exact DP and the paper's
    Monte-Carlo estimator are provided; tests cross-validate them. *)

val adopter_probabilities : Strategy.t -> Triple.t -> float array
(** Per-distinct-user probabilities of adopting [z.i] by time [z.t], for
    users other than [z.u] recommended the item at times ≤ [z.t]. *)

val prob_capacity_free : Strategy.t -> Triple.t -> float
(** Exact [B_S(i,t)] via the Poisson-binomial DP. Equals 1 whenever fewer
    than [q_i] other users were recommended the item up to [t]. *)

val prob_capacity_free_mc :
  Strategy.t -> Triple.t -> samples:int -> Revmax_prelude.Rng.t -> float
(** Monte-Carlo estimate: each sample simulates every other recipient's
    (user, class) chain with {!Simulate.simulate_chain} and counts how many
    adopted item [z.i] by time [z.t]. *)
