(** A user–item–time triple, the atoms of a recommendation strategy
    (§3.1: [(u, i, t) ∈ S] means item [i] is recommended to user [u] at
    time step [t]). Times run over [1 .. T]. *)

type t = { u : int; i : int; t : int }

val make : u:int -> i:int -> t:int -> t

val compare : t -> t -> int
(** Total order: by user, then time, then item. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Renders as [(u, i, t)]. *)

val to_string : t -> string
