lib/flow/max_dcs.mli:
