lib/flow/max_dcs.ml: Array List Mcmf
