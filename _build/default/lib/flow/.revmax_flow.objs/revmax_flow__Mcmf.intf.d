lib/flow/mcmf.mli:
