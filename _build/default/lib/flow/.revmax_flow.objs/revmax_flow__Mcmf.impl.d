lib/flow/mcmf.ml: Array Float List Revmax_pqueue
