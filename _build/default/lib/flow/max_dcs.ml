type instance = {
  left : int;
  right : int;
  left_bound : int array;
  right_bound : int array;
  edges : (int * int * float) array;
}

type solution = { chosen : (int * int * float) array; weight : float }

let validate inst =
  if inst.left < 0 || inst.right < 0 then invalid_arg "Max_dcs: negative node counts";
  if Array.length inst.left_bound <> inst.left then invalid_arg "Max_dcs: left_bound length mismatch";
  if Array.length inst.right_bound <> inst.right then
    invalid_arg "Max_dcs: right_bound length mismatch";
  Array.iter (fun b -> if b < 0 then invalid_arg "Max_dcs: negative degree bound") inst.left_bound;
  Array.iter (fun b -> if b < 0 then invalid_arg "Max_dcs: negative degree bound") inst.right_bound;
  Array.iter
    (fun (u, v, _) ->
      if u < 0 || u >= inst.left || v < 0 || v >= inst.right then
        invalid_arg "Max_dcs: edge endpoint out of range")
    inst.edges

let solve inst =
  validate inst;
  (* nodes: 0 = source, 1..left = left nodes, left+1..left+right = right
     nodes, last = sink *)
  let source = 0 in
  let sink = inst.left + inst.right + 1 in
  let net = Mcmf.create (sink + 1) in
  Array.iteri
    (fun u b -> if b > 0 then ignore (Mcmf.add_edge net ~src:source ~dst:(1 + u) ~cap:b ~cost:0.0))
    inst.left_bound;
  Array.iteri
    (fun v b ->
      if b > 0 then
        ignore (Mcmf.add_edge net ~src:(1 + inst.left + v) ~dst:sink ~cap:b ~cost:0.0))
    inst.right_bound;
  let edge_ids =
    Array.map
      (fun (u, v, w) ->
        if w > 0.0 then
          Some (Mcmf.add_edge net ~src:(1 + u) ~dst:(1 + inst.left + v) ~cap:1 ~cost:(-.w))
        else None)
      inst.edges
  in
  let _result = Mcmf.solve ~stop_when_unprofitable:true net ~source ~sink in
  let chosen = ref [] and weight = ref 0.0 in
  Array.iteri
    (fun idx id ->
      match id with
      | Some e when Mcmf.flow_on net e > 0 ->
          let (u, v, w) = inst.edges.(idx) in
          chosen := (u, v, w) :: !chosen;
          weight := !weight +. w
      | Some _ | None -> ())
    edge_ids;
  { chosen = Array.of_list (List.rev !chosen); weight = !weight }

let greedy_lower_bound inst =
  validate inst;
  let left_used = Array.make inst.left 0 in
  let right_used = Array.make inst.right 0 in
  let sorted = Array.copy inst.edges in
  Array.sort (fun (_, _, w1) (_, _, w2) -> compare w2 w1) sorted;
  let chosen = ref [] and weight = ref 0.0 in
  Array.iter
    (fun (u, v, w) ->
      if w > 0.0 && left_used.(u) < inst.left_bound.(u) && right_used.(v) < inst.right_bound.(v)
      then begin
        left_used.(u) <- left_used.(u) + 1;
        right_used.(v) <- right_used.(v) + 1;
        chosen := (u, v, w) :: !chosen;
        weight := !weight +. w
      end)
    sorted;
  { chosen = Array.of_list (List.rev !chosen); weight = !weight }
