(** Minimum-cost flow by successive shortest augmenting paths with Johnson
    potentials (Dijkstra on reduced costs after one Bellman–Ford pass for
    graphs with negative arcs).

    Used by {!Max_dcs} to solve the paper's T=1 special case of REVMAX
    exactly (§3.2): the maximum-weight degree-constrained subgraph reduces to
    a flow whose augmentation stops as soon as the cheapest augmenting path
    stops being profitable. *)

type t
(** A mutable flow network. *)

type edge
(** Identifier of an added edge; use it to read back the shipped flow. *)

val create : int -> t
(** [create n] builds an empty network on nodes [0 .. n-1]. *)

val add_edge : t -> src:int -> dst:int -> cap:int -> cost:float -> edge
(** Directed edge with integer capacity and real cost per unit of flow. *)

type result = { flow : int; cost : float }
(** Total units shipped and their total cost. *)

val solve : ?stop_when_unprofitable:bool -> t -> source:int -> sink:int -> result
(** Run successive shortest paths from [source] to [sink].

    With [stop_when_unprofitable:true] (profit mode) augmentation stops once
    the cheapest remaining augmenting path has non-negative cost, yielding
    the flow of minimum cost over {e all} flow values — exactly what
    maximum-weight matching-style reductions need. With the default [false],
    the maximum flow of minimum cost is computed.

    The solver may be called once per network; re-solving a partially
    saturated network is not supported. *)

val flow_on : t -> edge -> int
(** Units shipped on an edge after [solve]. *)
