(** Maximum-weight degree-constrained subgraph (Max-DCS) on bipartite graphs.

    §3.2 of the paper: REVMAX with a one-step horizon (T = 1) is solvable in
    polynomial time by casting it as Max-DCS on the bipartite user–item graph
    with user degree bounds [k] (display constraint), item degree bounds
    [q_i] (capacity constraint), and edge weights
    [w(u,i) = p(i,1) · q(u,i,1)].

    The solver reduces Max-DCS to min-cost flow: a super-source feeds every
    left node with capacity [deg bound], each weighted edge becomes an arc of
    capacity 1 and cost [−w], and every right node drains into a super-sink
    with capacity equal to its bound. Augmentation stops when no remaining
    path is profitable, so edges of zero or negative weight never enter the
    solution and the selected subgraph has maximum total weight. *)

type instance = {
  left : int;  (** number of left (user) nodes *)
  right : int;  (** number of right (item) nodes *)
  left_bound : int array;  (** degree bound per left node, length [left] *)
  right_bound : int array;  (** degree bound per right node, length [right] *)
  edges : (int * int * float) array;  (** (left node, right node, weight) *)
}

type solution = {
  chosen : (int * int * float) array;  (** selected edges *)
  weight : float;  (** their total weight *)
}

val solve : instance -> solution
(** Exact optimum. Edges with non-positive weight are never selected.
    Raises [Invalid_argument] on malformed instances (out-of-range node ids,
    negative bounds, mismatched array lengths). *)

val greedy_lower_bound : instance -> solution
(** Simple weight-descending greedy respecting both degree bounds. Used in
    tests as a feasible lower bound for the exact solver. *)
