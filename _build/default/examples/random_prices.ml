(* §7 of the paper: prices are only known as distributions. This example
   builds a small market whose adoption probabilities follow prices through
   Gaussian valuations, plans against the MEAN prices (the paper's
   suggestion for reusing the §5 algorithms), and then scores the plan
   three ways:

     - the mean-price heuristic (order-1 Taylor): ignores price noise;
     - the paper's Taylor approximation with second-order terms;
     - Monte-Carlo over price realizations (ground truth).

   As §7 predicts, the mean-price value is systematically optimistic and
   the second-order correction recovers most of the gap at moderate noise.

     dune exec examples/random_prices.exe *)

module Instance = Revmax.Instance
module Greedy = Revmax.Greedy
module Random_price = Revmax.Random_price
module Distribution = Revmax_stats.Distribution
module Valuation = Revmax_datagen.Valuation
module Rng = Revmax_prelude.Rng

let horizon = 4
let num_users = 10
let num_items = 6

let mean_price i time = 40.0 +. (15.0 *. float_of_int i) +. (2.0 *. float_of_int time)

let valuation i = Distribution.Gaussian { mean = 55.0 +. (15.0 *. float_of_int i); sigma = 18.0 }

let rating u i = 3.0 +. float_of_int ((u + i) mod 3) *. 0.7

let q_of_price ~u ~i ~price =
  Valuation.adoption_probability ~valuation:(valuation i) ~rating:(rating u i) ~r_max:5.0 ~price

let () =
  let model =
    {
      Random_price.mean = (fun ~i ~time -> mean_price i time);
      sigma = (fun ~i ~time -> 0.08 *. mean_price i time) (* 8%% daily price noise *);
      corr = 0.25;
      q_of_price;
    }
  in
  (* a structural instance: classes pair up items; capacities modest *)
  let skeleton =
    Instance.create ~num_users ~num_items ~horizon ~display_limit:2
      ~class_of:(Array.init num_items (fun i -> i / 2))
      ~capacity:(Array.make num_items 5)
      ~saturation:(Array.make num_items 0.6)
      ~price:(Array.init num_items (fun i -> Array.init horizon (fun t -> mean_price i (t + 1))))
      ~adoption:
        (List.concat
           (List.init num_users (fun u ->
                List.init num_items (fun i ->
                    ( u,
                      i,
                      Array.init horizon (fun t -> q_of_price ~u ~i ~price:(mean_price i (t + 1)))
                    )))))
      ()
  in
  (* plan against mean prices with G-Greedy, as §7 suggests *)
  let plan_instance = Random_price.mean_instance skeleton model in
  let strategy, _ = Greedy.run plan_instance in

  let order1 = Random_price.taylor_revenue ~order:`One skeleton model strategy in
  let order2 = Random_price.taylor_revenue ~order:`Two skeleton model strategy in
  let mc = Random_price.mc_revenue skeleton model strategy ~samples:50_000 (Rng.create 11) in

  Printf.printf "planned %d recommendations against mean prices\n\n"
    (Revmax.Strategy.size strategy);
  Printf.printf "expected revenue under random prices (8%% noise, corr 0.25):\n";
  Printf.printf "  mean-price heuristic (order 1): %8.2f\n" order1;
  Printf.printf "  Taylor with 2nd-order terms   : %8.2f\n" order2;
  Printf.printf "  Monte-Carlo ground truth      : %8.2f  (+- %.2f)\n" mc.Revmax_stats.Mc.mean
    (1.96 *. mc.Revmax_stats.Mc.std_error);
  Printf.printf "\nsecond-order correction covers %.0f%% of the mean-price bias\n"
    (100.0 *. (order1 -. order2) /. (order1 -. mc.Revmax_stats.Mc.mean))
