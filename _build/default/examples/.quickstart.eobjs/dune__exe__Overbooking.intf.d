examples/overbooking.mli:
