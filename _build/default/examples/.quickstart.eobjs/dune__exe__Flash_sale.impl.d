examples/flash_sale.ml: Array List Printf Revmax Revmax_datagen Revmax_stats
