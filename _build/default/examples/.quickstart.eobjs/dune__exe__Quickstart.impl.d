examples/quickstart.ml: Format List Printf Revmax Revmax_prelude Revmax_stats
