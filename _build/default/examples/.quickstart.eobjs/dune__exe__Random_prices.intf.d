examples/random_prices.mli:
