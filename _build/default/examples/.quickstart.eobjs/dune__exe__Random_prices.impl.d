examples/random_prices.ml: Array List Printf Revmax Revmax_datagen Revmax_prelude Revmax_stats
