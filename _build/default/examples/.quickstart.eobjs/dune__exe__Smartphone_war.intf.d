examples/smartphone_war.mli:
