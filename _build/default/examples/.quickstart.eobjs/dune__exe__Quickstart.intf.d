examples/quickstart.mli:
