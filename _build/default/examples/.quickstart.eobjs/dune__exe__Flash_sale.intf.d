examples/flash_sale.mli:
