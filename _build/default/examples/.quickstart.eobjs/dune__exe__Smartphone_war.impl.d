examples/smartphone_war.ml: Array List Printf Revmax Revmax_prelude String
