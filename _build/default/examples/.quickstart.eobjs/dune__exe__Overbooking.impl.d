examples/overbooking.ml: List Printf Revmax Revmax_prelude
