(* Competition and saturation: the paper's smartphone example (§1). A user
   finds three same-class phones appealing, but will buy at most one in a
   short horizon, and repeated pushes of the same class cause boredom.

   The example contrasts:
     - the naive plan that re-recommends the most profitable phone daily
       (maximal saturation, no hedging across the class), against
     - G-Greedy, which spaces and diversifies recommendations,
   and then runs the finite-stock behavioural simulator to show capacity
   effects (only a few units of the flagship in stock).

     dune exec examples/smartphone_war.exe *)

module Instance = Revmax.Instance
module Strategy = Revmax.Strategy
module Revenue = Revmax.Revenue
module Greedy = Revmax.Greedy
module Simulate = Revmax.Simulate
module Triple = Revmax.Triple
module Rng = Revmax_prelude.Rng

let phone_names = [| "flagship ($999)"; "mid-range ($599)"; "budget ($299)" |]

let () =
  let horizon = 5 in
  let num_users = 8 in
  (* all three phones in one class; the flagship has only 2 units *)
  let adoption =
    List.concat
      (List.init num_users (fun u ->
           let enthusiasm = 0.25 +. (0.05 *. float_of_int (u mod 4)) in
           [
             (u, 0, Array.make horizon (enthusiasm *. 0.8));
             (u, 1, Array.make horizon enthusiasm);
             (u, 2, Array.make horizon (enthusiasm *. 1.2));
           ]))
  in
  let instance =
    Instance.create ~num_users ~num_items:3 ~horizon ~display_limit:1 ~class_of:[| 0; 0; 0 |]
      ~capacity:[| 2; 5; 8 |]
      ~saturation:[| 0.4; 0.4; 0.4 |]
      ~price:
        [|
          Array.make horizon 999.0;
          Array.make horizon 599.0;
          Array.make horizon 299.0;
        |]
      ~adoption ()
  in

  (* naive: hammer the highest price x probability phone every day *)
  let naive = Strategy.create instance in
  for u = 0 to num_users - 1 do
    for t = 1 to horizon do
      let z = Triple.make ~u ~i:0 ~t in
      if Strategy.can_add naive z then Strategy.add naive z
    done
  done;

  let smart, _ = Greedy.run instance in

  Printf.printf "phones in one competition class: %s\n\n"
    (String.concat ", " (Array.to_list phone_names));

  Printf.printf "naive plan  : repeat the flagship to its 2 capacity users every day\n";
  Printf.printf "  expected revenue: %10.2f  (saturation throttles every repeat)\n"
    (Revenue.total naive);

  Printf.printf "G-Greedy    : %d recommendations across all three phones\n" (Strategy.size smart);
  let per_item = Array.make 3 0 in
  List.iter (fun (z : Triple.t) -> per_item.(z.i) <- per_item.(z.i) + 1) (Strategy.to_list smart);
  Array.iteri (fun i c -> Printf.printf "  %-18s %d recommendations\n" phone_names.(i) c) per_item;
  Printf.printf "  expected revenue: %10.2f\n\n" (Revenue.total smart);

  (* behavioural check: what actually happens with finite stock *)
  let rng = Rng.create 7 in
  let worlds = 2_000 in
  let total_rev = ref 0.0 and total_stockouts = ref 0 in
  for _ = 1 to worlds do
    let report = Simulate.run_with_stock smart rng in
    total_rev := !total_rev +. report.Simulate.revenue;
    total_stockouts := !total_stockouts + report.Simulate.stockouts
  done;
  Printf.printf "behavioural simulation of the G-Greedy plan (%d worlds, finite stock):\n" worlds;
  Printf.printf "  mean realized revenue: %.2f\n" (!total_rev /. float_of_int worlds);
  Printf.printf "  mean stock-outs per world: %.3f (capacity constraint doing its job)\n"
    (float_of_int !total_stockouts /. float_of_int worlds)
