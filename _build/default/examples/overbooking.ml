(* R-REVMAX (§4.2): recommending beyond capacity can pay. The hard
   capacity constraint of REVMAX keeps an item with q_i units from being
   recommended to more than q_i distinct users — but adoptions are
   uncertain, so showing it to a few extra users ("overbooking") raises the
   expected number of units actually sold. The paper relaxes the constraint
   by pushing it into the objective through the capacity factor B_S(i,t)
   (the probability that stock remains), and approximates the relaxed
   problem with matroid-constrained local search.

   This example builds a boutique with 2 units of an exclusive item and 5
   interested customers, compares:
     - the strict G-Greedy plan (≤ 2 distinct recipients), and
     - the local-search R-REVMAX plan (may overbook),
   scoring both with the relaxed objective and with the behavioural
   finite-stock simulator — realized sales, not just recommendations.

     dune exec examples/overbooking.exe *)

module Instance = Revmax.Instance
module Strategy = Revmax.Strategy
module Revenue = Revmax.Revenue
module Relaxed = Revmax.Relaxed
module Greedy = Revmax.Greedy
module Local_search = Revmax.Local_search
module Capacity_oracle = Revmax.Capacity_oracle
module Simulate = Revmax.Simulate
module Triple = Revmax.Triple
module Rng = Revmax_prelude.Rng

let () =
  let num_users = 5 in
  (* one exclusive item, 2 units in stock, one-day horizon, 40% adoption *)
  let instance =
    Instance.create ~num_users ~num_items:1 ~horizon:1 ~display_limit:1 ~class_of:[| 0 |]
      ~capacity:[| 2 |] ~saturation:[| 1.0 |]
      ~price:[| [| 250.0 |] |]
      ~adoption:(List.init num_users (fun u -> (u, 0, [| 0.4 |])))
      ()
  in

  let strict, _ = Greedy.run instance in
  Printf.printf "strict REVMAX (G-Greedy): recommends to %d users (capacity 2)\n"
    (Strategy.size strict);
  Printf.printf "  expected revenue (Definition 2):    %8.2f\n" (Revenue.total strict);

  let relaxed = Local_search.solve ~eps:0.2 instance in
  let recipients = Strategy.size relaxed.Local_search.strategy in
  Printf.printf "\nR-REVMAX (local search, 1/(4+eps)): recommends to %d users\n" recipients;
  Printf.printf "  relaxed expected revenue (E_S with B_S): %.2f  (%d oracle calls)\n"
    relaxed.Local_search.value relaxed.Local_search.oracle_calls;
  List.iter
    (fun z ->
      Printf.printf "  user %d: B_S = %.3f (probability stock remains for them)\n" z.Triple.u
        (Capacity_oracle.prob_capacity_free relaxed.Local_search.strategy z))
    (Strategy.to_list relaxed.Local_search.strategy);

  (* ground truth: realized sales under finite stock, many worlds *)
  let rng = Rng.create 99 in
  let worlds = 100_000 in
  let realized plan =
    let acc = ref 0.0 in
    for _ = 1 to worlds do
      acc := !acc +. (Simulate.run_with_stock plan rng).Simulate.revenue
    done;
    !acc /. float_of_int worlds
  in
  let strict_sales = realized strict in
  let relaxed_sales = realized relaxed.Local_search.strategy in
  Printf.printf "\nrealized mean revenue over %d simulated worlds (2 units of stock):\n" worlds;
  Printf.printf "  strict plan  (2 recipients): %8.2f\n" strict_sales;
  Printf.printf "  relaxed plan (%d recipients): %8.2f  (+%.1f%%)\n" recipients relaxed_sales
    (100.0 *. ((relaxed_sales /. strict_sales) -. 1.0));
  Printf.printf
    "\noverbooking wins because adoption is uncertain: with 2 recipients the second unit\n\
     sells only if both adopt (probability %.0f%%), while extra recommendations keep the\n\
     stock moving without ever selling more units than exist.\n"
    (0.4 *. 0.4 *. 100.0)
