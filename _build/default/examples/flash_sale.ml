(* The paper's §1 motivating scenario: a product is scheduled to go on sale
   in a few days. A strategic planner should

     - recommend it to HIGH-valuation users BEFORE the price drops (they
       are willing to pay full price, so sell high), and
     - postpone the recommendation to LOW-valuation users UNTIL the sale
       (they only convert at the sale price).

   A static planner cannot make this distinction. This example constructs
   exactly that market, derives adoption probabilities from Gaussian
   valuations (the §6 formula), and shows that G-Greedy discovers the
   postpone-vs-preempt policy on its own.

     dune exec examples/flash_sale.exe *)

module Instance = Revmax.Instance
module Strategy = Revmax.Strategy
module Revenue = Revmax.Revenue
module Greedy = Revmax.Greedy
module Baselines = Revmax.Baselines
module Triple = Revmax.Triple
module Distribution = Revmax_stats.Distribution
module Valuation = Revmax_datagen.Valuation

let horizon = 5
let sale_day = 4
let full_price = 100.0
let sale_price = 70.0

let price_on day = if day >= sale_day then sale_price else full_price

let () =
  (* one product; 6 users: 3 high-valuation (val ~ N(115, 10)) and 3
     low-valuation (val ~ N(80, 10)); everyone rates it highly *)
  let num_users = 6 in
  let valuation_of u =
    if u < 3 then Distribution.Gaussian { mean = 115.0; sigma = 10.0 }
    else Distribution.Gaussian { mean = 80.0; sigma = 10.0 }
  in
  let q_vector u =
    Array.init horizon (fun idx ->
        Valuation.adoption_probability ~valuation:(valuation_of u) ~rating:4.5 ~r_max:5.0
          ~price:(price_on (idx + 1)))
  in
  let instance =
    Instance.create ~num_users ~num_items:1 ~horizon ~display_limit:1 ~class_of:[| 0 |]
      ~capacity:[| num_users |]
      ~saturation:[| 0.3 |] (* repeating the same product quickly bores people *)
      ~price:[| Array.init horizon (fun idx -> price_on (idx + 1)) |]
      ~adoption:(List.init num_users (fun u -> (u, 0, q_vector u)))
      ()
  in
  Printf.printf "price schedule: ";
  for day = 1 to horizon do
    Printf.printf "%s$%.0f" (if day > 1 then ", " else "") (price_on day)
  done;
  Printf.printf "  (sale starts day %d)\n\n" sale_day;

  Printf.printf "adoption probability of the product, per user and day:\n";
  for u = 0 to num_users - 1 do
    Printf.printf "  user %d (%s): " u (if u < 3 then "high valuation" else "low valuation ");
    Array.iter (fun q -> Printf.printf "%.2f " q) (q_vector u);
    print_newline ()
  done;

  let strategy, _ = Greedy.run instance in
  Printf.printf "\nG-Greedy's plan (first recommendation per user):\n";
  for u = 0 to num_users - 1 do
    let first =
      List.filter (fun (z : Triple.t) -> z.u = u) (Strategy.to_list strategy)
      |> List.map (fun (z : Triple.t) -> z.t)
      |> function
      | [] -> None
      | ts -> Some (List.fold_left min max_int ts)
    in
    match first with
    | None -> Printf.printf "  user %d: never recommended\n" u
    | Some day ->
        Printf.printf "  user %d (%s): first shown on day %d — %s\n" u
          (if u < 3 then "high valuation" else "low valuation ")
          day
          (if day >= sale_day then "waits for the sale" else "sells at full price")
  done;

  let dynamic = Revenue.total strategy in
  let static = Revenue.total (Baselines.top_revenue instance) in
  Printf.printf "\nexpected revenue, dynamic plan:            %.2f\n" dynamic;
  Printf.printf "expected revenue, static TopRevenue plan:  %.2f\n" static;
  Printf.printf "strategic timing gain:                     +%.1f%%\n"
    (100.0 *. ((dynamic /. static) -. 1.0))
