(* Quickstart: build a REVMAX instance by hand, plan with G-Greedy, inspect
   the strategy, and validate the expected revenue by simulation.

     dune exec examples/quickstart.exe

   The scenario: 3 users, 4 items in 2 competition classes (two tablets,
   two games), a 3-day horizon with a price drop on item 0 at day 3. *)

module Instance = Revmax.Instance
module Strategy = Revmax.Strategy
module Revenue = Revmax.Revenue
module Greedy = Revmax.Greedy
module Simulate = Revmax.Simulate
module Triple = Revmax.Triple
module Rng = Revmax_prelude.Rng

let () =
  (* items 0,1 are tablets (class 0); items 2,3 are games (class 1) *)
  let instance =
    Instance.create ~num_users:3 ~num_items:4 ~horizon:3 ~display_limit:2
      ~class_of:[| 0; 0; 1; 1 |]
      ~capacity:[| 2; 2; 3; 3 |]
      ~saturation:[| 0.6; 0.6; 0.8; 0.8 |]
      ~price:
        [|
          [| 399.0; 399.0; 329.0 |] (* tablet A goes on sale on day 3 *);
          [| 349.0; 349.0; 349.0 |];
          [| 59.0; 59.0; 59.0 |];
          [| 69.0; 69.0; 49.0 |];
        |]
      ~adoption:
        [
          (* user 0 loves tablets; the sale price pushes her over the line *)
          (0, 0, [| 0.20; 0.20; 0.55 |]);
          (0, 1, [| 0.25; 0.25; 0.25 |]);
          (0, 2, [| 0.10; 0.10; 0.10 |]);
          (* user 1 is a gamer *)
          (1, 2, [| 0.50; 0.45; 0.40 |]);
          (1, 3, [| 0.30; 0.30; 0.60 |]);
          (1, 0, [| 0.05; 0.05; 0.15 |]);
          (* user 2 likes everything a little *)
          (2, 1, [| 0.30; 0.30; 0.30 |]);
          (2, 3, [| 0.20; 0.20; 0.35 |]);
        ]
      ()
  in
  Format.printf "instance: %a@." Instance.pp_stats instance;

  let strategy, stats = Greedy.run instance in
  Printf.printf "\nG-Greedy planned %d recommendations (%d marginal evaluations):\n"
    (Strategy.size strategy) stats.Greedy.marginal_evaluations;
  List.iter
    (fun (z : Triple.t) ->
      Printf.printf "  day %d: show item %d to user %d  (price %.0f, qS = %.3f)\n" z.t z.i z.u
        (Instance.price instance ~i:z.i ~time:z.t)
        (Revenue.dynamic_probability_in strategy z))
    (Strategy.to_list strategy);

  Printf.printf "\nexpected total revenue: %.2f\n" (Revenue.total strategy);
  Printf.printf "strategy satisfies display and capacity constraints: %b\n"
    (Strategy.is_valid strategy);

  (* check the closed-form objective against 200k simulated worlds *)
  let est = Simulate.estimate_revenue strategy ~samples:200_000 (Rng.create 42) in
  Printf.printf "simulated revenue: %.2f +- %.2f (unbiased for the analytic value)\n"
    est.Revmax_stats.Mc.mean
    (1.96 *. est.Revmax_stats.Mc.std_error)
